// Unit tests for the remediation engine's policy table and safety
// rails: budgets defer (never drop), oversize plans escalate, the
// blast-radius cap bounds concurrent evacuations, cooldowns rate-limit
// flappers, dry-run walks the same decision machine without touching
// the effectors, and the snapshot round-trips bit-identically.
package remedy

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"skeletonhunter/internal/component"
	"skeletonhunter/internal/incident"
	"skeletonhunter/internal/overlay"
)

// fakeOps is a scripted effector surface that records every call.
type fakeOps struct {
	hosts    map[component.ID][]int // projected footprint per component
	healthy  map[component.ID]bool  // verify verdicts (default healthy)
	execErr  map[component.ID]error
	executed []string
	rolled   []string
	notes    []string
	repaired []component.ID
}

func newFakeOps() *fakeOps {
	return &fakeOps{
		hosts:   make(map[component.ID][]int),
		healthy: make(map[component.ID]bool),
		execErr: make(map[component.ID]error),
	}
}

func (f *fakeOps) ops() Ops {
	return Ops{
		AffectedHosts: func(kind ActionKind, comp component.ID) []int { return f.hosts[comp] },
		Execute: func(kind ActionKind, comp component.ID) (string, error) {
			if err := f.execErr[comp]; err != nil {
				return "", err
			}
			f.executed = append(f.executed, fmt.Sprintf("%s %s", kind, comp))
			return "ok", nil
		},
		Rollback: func(kind ActionKind, comp component.ID, hosts []int) {
			f.rolled = append(f.rolled, string(comp))
		},
		Healthy: func(comp component.ID, executedAt time.Duration) bool {
			ok, scripted := f.healthy[comp]
			return !scripted || ok
		},
		NoteAudit:    func(comp component.ID, note string) { f.notes = append(f.notes, note) },
		NoteRepaired: func(comp component.ID, at time.Duration, how string) { f.repaired = append(f.repaired, comp) },
	}
}

func openIncident(id string, comp component.ID) incident.Incident {
	return incident.Incident{
		ID:        id,
		Component: comp,
		Class:     component.ClassOf(comp),
		State:     incident.Open,
		OpenedAt:  time.Minute,
	}
}

func TestPolicyTable(t *testing.T) {
	drifted := openIncident("i-rnic", component.RNIC(3, 1))
	drifted.Evidence.Offload = &overlay.OffloadDump{
		Inconsistent: []overlay.FlowKey{{VNI: 7}},
	}
	cases := []struct {
		in   incident.Incident
		want ActionKind
		ok   bool
	}{
		{openIncident("i-ctr", component.Container("t0/c1")), KindRestartContainer, true},
		{drifted, KindClearOffload, true},
		{openIncident("i-rnic2", component.RNIC(4, 0)), KindDrainHost, true},
		{openIncident("i-hb", component.HostBoard(5)), KindDrainHost, true},
		{openIncident("i-vsw", component.VSwitch(6)), KindDrainHost, true},
		{openIncident("i-tor", component.Switch("tor/p0/r1")), KindCordonDrainSwitch, true},
		{openIncident("i-link", component.ID("link/nic/h2/r0--tor/p0/r0")), KindDrainHost, true},
		{openIncident("i-tr", component.ID("link/tor/p0/r0--agg/p0/a0")), KindCordonDrainSwitch, true},
		{openIncident("i-cfg-h", component.HostConfig(7)), KindDrainHost, true},
		{openIncident("i-cfg-s", component.SwitchConfig("agg/p1/a0")), KindCordonDrainSwitch, true},
		{openIncident("i-cfg-x", component.ID("config/clock-skew")), 0, false},
	}
	for _, c := range cases {
		kind, ok := PolicyFor(&c.in)
		if ok != c.ok || (ok && kind != c.want) {
			t.Errorf("PolicyFor(%s): got (%v, %v), want (%v, %v)", c.in.Component, kind, ok, c.want, c.ok)
		}
	}
}

// TestPolicyGrayNeverAutoRemediates pins the conservative gray policy:
// a correlate-layer incident pages with evidence only, even when its
// class would otherwise map to an automated play.
func TestPolicyGrayNeverAutoRemediates(t *testing.T) {
	comps := []component.ID{
		component.Container("t0/c1"),
		component.RNIC(4, 0),
		component.HostBoard(5),
		component.Switch("tor/p0/r1"),
		component.ID("link/nic/h2/r0--tor/p0/r0"),
	}
	for _, comp := range comps {
		in := openIncident("i-gray", comp)
		in.Gray = true
		if kind, ok := PolicyFor(&in); ok {
			t.Errorf("PolicyFor(gray %s) = (%v, true), want no automated play", comp, kind)
		}
	}
}

// TestBudgetDefersNotDrops exceeds the per-window budget and requires
// the overflow to queue FIFO and execute in the next window.
func TestBudgetDefersNotDrops(t *testing.T) {
	f := newFakeOps()
	e := NewEngine(Config{Hosts: 16, Budget: 1, Window: 10 * time.Minute, VerifyAfter: time.Minute}, f.ops())
	incs := []incident.Incident{
		openIncident("i-0", component.HostBoard(0)),
		openIncident("i-1", component.HostBoard(1)),
	}
	f.hosts[incs[0].Component] = []int{0}
	f.hosts[incs[1].Component] = []int{1}

	e.Tick(time.Minute, incs)
	if got := len(f.executed); got != 1 {
		t.Fatalf("executed %d actions in window, budget is 1", got)
	}
	if d, _ := e.Pending(); d != 1 {
		t.Fatalf("deferred = %d, want 1", d)
	}

	// Still inside the window: the deferral holds, nothing is dropped.
	e.Tick(5*time.Minute, incs)
	if d, _ := e.Pending(); d != 1 {
		t.Fatalf("mid-window deferred = %d, want 1", d)
	}

	// Window rolls over: the queued action runs.
	e.Tick(10*time.Minute+time.Second, incs)
	if got := len(f.executed); got != 2 {
		t.Fatalf("executed %d actions after roll-over, want 2", got)
	}
	audit := e.Audit()
	if audit[1].Deferrals == 0 {
		t.Fatal("overflow action recorded no deferrals")
	}
}

// TestBlastRadiusCap holds a second evacuation back while the first is
// in flight, and escalates a plan that can never fit.
func TestBlastRadiusCap(t *testing.T) {
	f := newFakeOps()
	// 16 hosts at 0.25 → cap 4 simultaneous evacuated hosts.
	e := NewEngine(Config{Hosts: 16, Budget: 10, BlastRadius: 0.25, VerifyAfter: 5 * time.Minute}, f.ops())
	a := openIncident("i-a", component.HostBoard(0))
	b := openIncident("i-b", component.SwitchConfig("tor/p0/r0"))
	huge := openIncident("i-c", component.SwitchConfig("spine/s0"))
	f.hosts[a.Component] = []int{0}
	f.hosts[b.Component] = []int{0, 1, 2, 3}
	f.hosts[huge.Component] = []int{0, 1, 2, 3, 4, 5, 6, 7}

	e.Tick(time.Minute, []incident.Incident{a, b, huge})
	if got := len(f.executed); got != 1 {
		t.Fatalf("executed %d, want 1 (host drain only; switch drain exceeds active cap)", got)
	}
	audit := e.Audit()
	if audit[1].State != StateDeferred {
		t.Fatalf("4-host plan state = %s, want deferred while 1 host is active", audit[1].State)
	}
	if audit[2].State != StateEscalated {
		t.Fatalf("8-host plan state = %s, want escalated (can never fit cap 4)", audit[2].State)
	}

	// First drain verifies and commits; capacity frees; the deferred
	// switch drain now fits exactly.
	e.Tick(7*time.Minute, []incident.Incident{a, b})
	if got := len(f.executed); got != 2 {
		t.Fatalf("executed %d after capacity freed, want 2", got)
	}
}

// TestCooldown blocks a re-plan on the same component until the
// cooldown elapses, then allows it for a fresh incident.
func TestCooldown(t *testing.T) {
	f := newFakeOps()
	e := NewEngine(Config{Hosts: 8, Cooldown: 30 * time.Minute, VerifyAfter: time.Minute, Budget: 10}, f.ops())
	comp := component.HostBoard(2)
	f.hosts[comp] = []int{2}

	e.Tick(time.Minute, []incident.Incident{openIncident("i-first", comp)})
	e.Tick(3*time.Minute, nil) // verify commits
	if len(f.repaired) != 1 {
		t.Fatalf("repaired %v, want one commit", f.repaired)
	}

	// A fresh incident on the same component inside the cooldown stays
	// untouched.
	e.Tick(10*time.Minute, []incident.Incident{openIncident("i-again", comp)})
	if len(f.executed) != 1 {
		t.Fatalf("executed %d, want cooldown to hold the second plan", len(f.executed))
	}

	// After the cooldown it remediates again.
	e.Tick(40*time.Minute, []incident.Incident{openIncident("i-again", comp)})
	if len(f.executed) != 2 {
		t.Fatalf("executed %d after cooldown, want 2", len(f.executed))
	}
}

// TestVerifyRollback scripts a persisting symptom: the action must
// roll back, escalate, and not mark the incident repaired.
func TestVerifyRollback(t *testing.T) {
	f := newFakeOps()
	e := NewEngine(Config{Hosts: 8, VerifyAfter: time.Minute}, f.ops())
	comp := component.HostBoard(1)
	f.hosts[comp] = []int{1}
	f.healthy[comp] = false

	e.Tick(time.Minute, []incident.Incident{openIncident("i-sick", comp)})
	e.Tick(3*time.Minute, nil)

	audit := e.Audit()
	if audit[0].State != StateRolledBack {
		t.Fatalf("state = %s, want rolled-back", audit[0].State)
	}
	if len(f.rolled) != 1 {
		t.Fatalf("rollback calls = %d, want 1", len(f.rolled))
	}
	if len(f.repaired) != 0 {
		t.Fatalf("NoteRepaired fired on a failed verify: %v", f.repaired)
	}
}

// TestExecuteFailureEscalates turns an effector error into an
// escalation with rollback, freeing the component for later plans.
func TestExecuteFailureEscalates(t *testing.T) {
	f := newFakeOps()
	e := NewEngine(Config{Hosts: 8}, f.ops())
	comp := component.HostBoard(3)
	f.hosts[comp] = []int{3}
	f.execErr[comp] = errors.New("no spare capacity")

	e.Tick(time.Minute, []incident.Incident{openIncident("i-x", comp)})
	audit := e.Audit()
	if audit[0].State != StateEscalated {
		t.Fatalf("state = %s, want escalated", audit[0].State)
	}
	if _, v := e.Pending(); v != 0 {
		t.Fatalf("verifying = %d after failed execute, want 0", v)
	}
}

// TestDryRunMatchesRealIntent runs the same incident stream through a
// real engine and a dry-run engine: the planned intents must be
// identical, and the dry-run must never call an effector.
func TestDryRunMatchesRealIntent(t *testing.T) {
	stream := []incident.Incident{
		openIncident("i-0", component.HostBoard(0)),
		openIncident("i-1", component.RNIC(1, 0)),
		openIncident("i-2", component.Container("t0/c0")),
	}
	run := func(dry bool) ([]string, *fakeOps) {
		f := newFakeOps()
		f.hosts[stream[0].Component] = []int{0}
		f.hosts[stream[1].Component] = []int{1}
		e := NewEngine(Config{Hosts: 8, Budget: 10, VerifyAfter: time.Minute, DryRun: dry}, f.ops())
		e.Tick(time.Minute, stream)
		e.Tick(3*time.Minute, stream)
		var intents []string
		for _, a := range e.Audit() {
			intents = append(intents, a.Intent())
		}
		return intents, f
	}
	real, realOps := run(false)
	dry, dryOps := run(true)
	if fmt.Sprint(real) != fmt.Sprint(dry) {
		t.Fatalf("intent mismatch:\nreal %v\ndry  %v", real, dry)
	}
	if len(dryOps.executed) != 0 || len(dryOps.rolled) != 0 || len(dryOps.repaired) != 0 {
		t.Fatalf("dry run touched effectors: exec=%v rolled=%v repaired=%v",
			dryOps.executed, dryOps.rolled, dryOps.repaired)
	}
	if len(realOps.executed) != 3 {
		t.Fatalf("real run executed %d, want 3", len(realOps.executed))
	}
}

// TestSnapshotRoundTrip restores a snapshot into a fresh engine and
// requires a bit-identical fingerprint and identical onward behavior.
func TestSnapshotRoundTrip(t *testing.T) {
	f := newFakeOps()
	cfg := Config{Hosts: 16, Budget: 1, VerifyAfter: 5 * time.Minute}
	e := NewEngine(cfg, f.ops())
	incs := []incident.Incident{
		openIncident("i-0", component.HostBoard(0)),
		openIncident("i-1", component.HostBoard(1)),
	}
	f.hosts[incs[0].Component] = []int{0}
	f.hosts[incs[1].Component] = []int{1}
	e.Tick(time.Minute, incs) // one verifying, one deferred

	snap := e.Snapshot()
	if snap.Version != SnapshotVersion {
		t.Fatalf("snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}

	f2 := newFakeOps()
	f2.hosts = f.hosts
	e2 := NewEngine(cfg, f2.ops())
	if err := e2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if e.Fingerprint() != e2.Fingerprint() {
		t.Fatal("fingerprint diverged across snapshot/restore")
	}
	d1, v1 := e.Pending()
	d2, v2 := e2.Pending()
	if d1 != d2 || v1 != v2 {
		t.Fatalf("pending diverged: (%d,%d) vs (%d,%d)", d1, v1, d2, v2)
	}

	// Both engines continue identically: verify commits, deferral runs
	// in the next window.
	e.Tick(11*time.Minute, incs)
	e2.Tick(11*time.Minute, incs)
	if e.Fingerprint() != e2.Fingerprint() {
		t.Fatal("fingerprint diverged after post-restore tick")
	}

	bad := snap
	bad.Version = 99
	if err := e2.Restore(bad); err == nil {
		t.Fatal("restore accepted an unknown snapshot version")
	}
}

// TestCrashClearsState models the controller dying: the ledger is
// empty until a restore brings it back.
func TestCrashClearsState(t *testing.T) {
	f := newFakeOps()
	e := NewEngine(Config{Hosts: 8}, f.ops())
	f.hosts[component.HostBoard(0)] = []int{0}
	e.Tick(time.Minute, []incident.Incident{openIncident("i-0", component.HostBoard(0))})
	snap := e.Snapshot()

	e.Crash()
	if len(e.Audit()) != 0 {
		t.Fatal("audit survived a crash")
	}
	if err := e.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if len(e.Audit()) != 1 {
		t.Fatal("restore did not bring the ledger back")
	}
}

// TestKindStateStringsAndConfig pins the audit-facing labels —
// including the out-of-range fallbacks a corrupt snapshot could
// surface — and the defaulted configuration the engine reports.
func TestKindStateStringsAndConfig(t *testing.T) {
	kinds := map[ActionKind]string{
		KindRestartContainer:  "restart-container",
		KindDrainHost:         "drain-host",
		KindCordonDrainSwitch: "cordon-drain-switch",
		KindClearOffload:      "clear-offload",
		ActionKind(99):        "kind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	states := map[ActionState]string{
		StatePlanned:    "planned",
		StateDeferred:   "deferred",
		StateVerifying:  "verifying",
		StateCommitted:  "committed",
		StateRolledBack: "rolled-back",
		StateEscalated:  "escalated",
		ActionState(99): "state(99)",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}

	e := NewEngine(Config{Hosts: 16}, Ops{})
	cfg := e.Config()
	if cfg.Budget != 4 || cfg.Window != 10*time.Minute || cfg.BlastRadius != 0.25 ||
		cfg.Cooldown != 10*time.Minute || cfg.VerifyAfter != 2*time.Minute {
		t.Fatalf("defaulted config = %+v", cfg)
	}
}

// TestSnapshotCarriesDoneAndCooldowns drives an engine through a full
// commit so the snapshot's done-set and cooldown walk (derived from
// the ledger in first-plan order) is exercised, then restores into a
// fresh engine and requires bit-identical fingerprints and an intact
// cooldown: the restored engine must not re-plan the repaired work.
func TestSnapshotCarriesDoneAndCooldowns(t *testing.T) {
	f := newFakeOps()
	cfg := Config{Hosts: 16, Budget: 4, Window: 10 * time.Minute, VerifyAfter: time.Minute, Cooldown: time.Hour}
	e := NewEngine(cfg, f.ops())
	inc := openIncident("i-0", component.HostBoard(2))
	f.hosts[inc.Component] = []int{2}
	e.Tick(time.Minute, []incident.Incident{inc})
	e.Tick(3*time.Minute, []incident.Incident{inc}) // verify deadline passed → committed

	s := e.Snapshot()
	if len(s.Done) != 1 || len(s.Cooldowns) != 1 {
		t.Fatalf("snapshot done=%v cooldowns=%v, want one of each", s.Done, s.Cooldowns)
	}
	if s.Cooldowns[0].Component != inc.Component || s.Cooldowns[0].Until != 3*time.Minute+time.Hour {
		t.Fatalf("cooldown = %+v", s.Cooldowns[0])
	}

	r := NewEngine(cfg, f.ops())
	if err := r.Restore(s); err != nil {
		t.Fatal(err)
	}
	if r.Fingerprint() != e.Fingerprint() {
		t.Fatal("restored engine fingerprint diverged")
	}
	// The restored done-set suppresses a re-plan of the same incident.
	before := len(f.executed)
	r.Tick(4*time.Minute, []incident.Incident{inc})
	if len(f.executed) != before {
		t.Fatal("restored engine re-executed a committed repair")
	}
}
