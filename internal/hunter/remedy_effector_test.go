// Unit tests for the deployment-side remediation effectors: how each
// ActionKind lands on the control plane, how rollback lifts cordons,
// and what the verify-then-commit health check observes. The engine's
// policy and rails are tested in internal/remedy; these pin mechanism.
package hunter

import (
	"strings"
	"testing"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/remedy"
	"skeletonhunter/internal/topology"
)

func effectorDeployment(t *testing.T) (*Deployment, *cluster.Task) {
	t.Helper()
	d, err := New(Options{Seed: 7, Spec: healSpec, Lag: fastLag()})
	if err != nil {
		t.Fatal(err)
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(2 * time.Minute)
	return d, task
}

func TestRemedyExecuteRestartContainer(t *testing.T) {
	d, task := effectorDeployment(t)
	victim := task.Containers[0]
	d.CP.CrashContainer(victim.ID)
	detail, err := d.remedyExecute(remedy.KindRestartContainer, component.Container(string(victim.ID)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "restarted "+string(victim.ID)) {
		t.Fatalf("detail = %q", detail)
	}
	if victim.State != cluster.Running {
		t.Fatalf("container state = %v after restart", victim.State)
	}
	// A running container is not restartable: the error propagates.
	if _, err := d.remedyExecute(remedy.KindRestartContainer, component.Container(string(victim.ID))); err == nil {
		t.Fatal("restart of a running container did not error")
	}
}

func TestRemedyExecuteCordonDrainSwitch(t *testing.T) {
	d, task := effectorDeployment(t)
	pod := d.Fabric.PodOf(task.Containers[0].Host)
	sw := d.Fabric.ToR(pod, 0)
	comp := component.Switch(sw)
	detail, err := d.remedyExecute(remedy.KindCordonDrainSwitch, comp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "cordoned") || !strings.Contains(detail, string(sw)) {
		t.Fatalf("detail = %q", detail)
	}
	span := d.Fabric.HostsUnder(sw)
	for _, h := range span {
		if !d.CP.HostCordoned(h) {
			t.Fatalf("host %d under %s not cordoned", h, sw)
		}
	}
	for _, c := range task.Containers {
		if d.CP.HostCordoned(c.Host) {
			t.Fatalf("container %s still on a cordoned host after drain", c.ID)
		}
	}
	// Rollback lifts exactly the cordons the action took.
	d.remedyRollback(remedy.KindCordonDrainSwitch, comp, span)
	if got := d.CP.CordonedHosts(); len(got) != 0 {
		t.Fatalf("cordons survived rollback: %v", got)
	}
	// Rollback of an in-place repair is a no-op.
	d.remedyRollback(remedy.KindClearOffload, comp, nil)
}

func TestRemedyExecuteErrors(t *testing.T) {
	d, _ := effectorDeployment(t)
	cases := []struct {
		kind remedy.ActionKind
		comp component.ID
	}{
		{remedy.KindRestartContainer, component.RNIC(0, 0)},        // not a container
		{remedy.KindRestartContainer, component.Container("nope")}, // unknown container
		{remedy.KindDrainHost, component.Switch("tor/p0/r0")},      // no host to drain
		{remedy.KindCordonDrainSwitch, component.RNIC(0, 0)},       // no switch to cordon
		{remedy.KindClearOffload, component.Switch("tor/p0/r0")},   // not an RNIC
		{remedy.KindClearOffload, component.RNIC(0, 0)},            // nothing stale to clear
		{remedy.ActionKind(99), component.RNIC(0, 0)},              // unknown kind
	}
	for _, tc := range cases {
		if _, err := d.remedyExecute(tc.kind, tc.comp); err == nil {
			t.Errorf("%v on %s: no error", tc.kind, tc.comp)
		}
	}
}

func TestRemedySwitchFromLink(t *testing.T) {
	d, _ := effectorDeployment(t)
	tor, agg := d.Fabric.ToR(0, 0), d.Fabric.Agg(0, 0)
	link := topology.MakeLinkID(tor, agg)
	sw, ok := d.remedySwitch(component.Link(link))
	if !ok {
		t.Fatalf("no switch resolved from link %s", link)
	}
	if sw != tor && sw != agg {
		t.Fatalf("resolved %s, want an endpoint of %s", sw, link)
	}
	if _, ok := d.remedySwitch(component.HostBoard(0)); ok {
		t.Fatal("host-scoped component resolved to a switch")
	}
}

// TestRemedyHealthySeesOffloadDrift pins the verify check's offload
// signal: a drifted flow table is unhealthy until the entries are
// restored, independent of alarm timing.
func TestRemedyHealthySeesOffloadDrift(t *testing.T) {
	d, task := effectorDeployment(t)
	a := task.Containers[0].Addrs[0]
	comp := component.RNIC(a.Host, a.Rail)
	if !d.remedyHealthy(comp, d.Engine.Now()) {
		t.Fatal("pristine RNIC reported unhealthy")
	}
	if _, err := d.Injector.Inject(faults.OffloadingFailure, faults.Target{Host: a.Host, Rail: a.Rail}); err != nil {
		t.Fatal(err)
	}
	if d.remedyHealthy(comp, d.Engine.Now()) {
		t.Fatal("drifted offload table reported healthy")
	}
	if _, err := d.remedyExecute(remedy.KindClearOffload, comp); err != nil {
		t.Fatal(err)
	}
	if !d.remedyHealthy(comp, d.Engine.Now()) {
		t.Fatal("cleared offload table still reported unhealthy")
	}
}
