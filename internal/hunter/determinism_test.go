package hunter

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/topology"
)

// runFingerprint plays a fixed two-tenant fault scenario and renders
// everything observable about the run — every alarm (times, anomaly
// keys, verdict components/layers/details, in order), the blacklist,
// and the engine's processed-event count — to a string. Runs with the
// same seed must produce byte-identical fingerprints whatever the
// analyzer worker count or GOMAXPROCS setting.
func runFingerprint(t *testing.T, workers int) string {
	t.Helper()
	d, err := New(Options{
		Seed:    23,
		Spec:    topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:     fastLag(),
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two tenants so the round fan-out has multiple shards to merge,
	// and two concurrent faults so both shards carry anomalies in the
	// same round — exercising the cross-shard merge order.
	t1, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute) // steady state + detector history

	a := t1.Containers[0].Addrs[0]
	if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: a.Rail}); err != nil {
		t.Fatal(err)
	}
	b := t2.Containers[1].Addrs[2]
	if _, err := d.Injector.Inject(faults.RNICPortFlapping, faults.Target{Host: b.Host, Rail: b.Rail}); err != nil {
		t.Fatal(err)
	}
	d.Run(3 * time.Minute)
	// End the run in a Flush: half-open windows across many pairs close
	// at once, exercising the detector's sorted flush-path emission —
	// historically a map-iteration nondeterminism source.
	d.Analyzer.Flush(d.Engine.Now())

	var sb strings.Builder
	for _, al := range d.Analyzer.Alarms() {
		fmt.Fprintf(&sb, "alarm@%v\n", al.At)
		for _, an := range al.Anomalies {
			fmt.Fprintf(&sb, "  anomaly %+v %v @%v score=%.9g\n", an.Key, an.Type, an.At, an.Score)
		}
		for _, v := range al.Verdicts {
			fmt.Fprintf(&sb, "  verdict [%v] %v pairs=%d %s\n", v.Layer, v.Components, v.Pairs, v.Detail)
		}
	}
	bl := d.Analyzer.Blacklist()
	keys := make([]string, 0, len(bl))
	for c := range bl {
		keys = append(keys, string(c))
	}
	sort.Strings(keys)
	for _, c := range keys {
		at, _ := d.Analyzer.Blacklisted(component.ID(c))
		fmt.Fprintf(&sb, "blacklist %s @%v\n", c, at)
	}
	fmt.Fprintf(&sb, "processed=%d shards=%d\n", d.Engine.Processed, d.Analyzer.Shards())
	return sb.String()
}

// TestDeterminismAcrossWorkerCounts is the load-bearing property of the
// sharded analysis plane: the worker pool size must only trade
// wall-clock for cores, never change an alarm, a verdict, or the
// blacklist.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	want := runFingerprint(t, 1)
	if !strings.Contains(want, "alarm@") {
		t.Fatal("scenario raised no alarms; determinism test has no teeth")
	}
	for _, workers := range []int{2, 4, 8} {
		if got := runFingerprint(t, workers); got != want {
			t.Fatalf("workers=%d diverged from serial run:\n--- serial ---\n%s--- workers=%d ---\n%s", workers, want, workers, got)
		}
	}
}

func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	single := runFingerprint(t, 0) // 0 → DefaultWorkers = GOMAXPROCS = 1
	runtime.GOMAXPROCS(prev)
	parallel := runFingerprint(t, 0) // DefaultWorkers at full parallelism
	if single != parallel {
		t.Fatalf("GOMAXPROCS=1 and GOMAXPROCS=%d runs diverged:\n--- single ---\n%s--- parallel ---\n%s", prev, single, parallel)
	}
}

func TestDeterminismSameSeedTwice(t *testing.T) {
	a := runFingerprint(t, 0)
	b := runFingerprint(t, 0)
	if a != b {
		t.Fatalf("same seed produced different runs:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}
