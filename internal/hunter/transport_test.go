package hunter

import (
	"testing"
	"time"

	"skeletonhunter/internal/transport"
)

func TestTransportEndToEnd(t *testing.T) {
	d := newDeployment(t)
	task := steadyTask(t, d)

	srv, err := d.ServeTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = nil
	defer srv.Close()

	secret, ok := d.TaskSecret(task.ID)
	if !ok {
		t.Fatal("no secret for task")
	}
	// Secrets are stable across lookups (agents and server must agree).
	secret2, _ := d.TaskSecret(task.ID)
	if string(secret) != string(secret2) {
		t.Fatal("task secret not stable")
	}

	c, err := transport.Dial(srv.Addr(), string(task.ID), 0, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	targets, err := c.PingList()
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("no targets over the wire")
	}
	for _, tg := range targets {
		if tg.SrcContainer != 0 {
			t.Fatalf("target for wrong source: %+v", tg)
		}
	}

	// Stream a synthetic anomalous batch and confirm it reaches the
	// analyzer's detector state (windows need more samples to alarm;
	// ingestion is what is under test here).
	var reports []transport.ProbeReport
	base := d.Engine.Now()
	for i := 0; i < 10; i++ {
		reports = append(reports, transport.ProbeReport{
			SrcContainer: 0, SrcRail: 0, DstContainer: 1, DstRail: 0,
			AtNanos:  int64(base + time.Duration(i)*time.Second),
			RTTNanos: int64(16 * time.Microsecond),
		})
	}
	if err := c.Report(reports); err != nil {
		t.Fatal(err)
	}

	full, basic, current, phase, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if full != 768 || basic != 96 || current != 96 || phase != "preload" {
		t.Fatalf("stats over wire = %d/%d/%d/%s", full, basic, current, phase)
	}

	// Forged identity: another tenant cannot query this task.
	evil, err := transport.Dial(srv.Addr(), string(task.ID), 0, transport.Secret("guess"))
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	if _, err := evil.PingList(); err == nil {
		t.Fatal("forged ping-list request accepted")
	}

	// Malformed reports are rejected.
	if err := c.Report([]transport.ProbeReport{{SrcContainer: 99}}); err == nil {
		t.Fatal("out-of-range report accepted")
	}
}

func TestTransportUnknownTask(t *testing.T) {
	d := newDeployment(t)
	srv, err := d.ServeTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = nil
	defer srv.Close()
	if _, ok := d.TaskSecret("task-ghost"); ok {
		t.Fatal("secret minted for unknown task")
	}
	c, err := transport.Dial(srv.Addr(), "task-ghost", 0, transport.Secret("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register(); err == nil {
		t.Fatal("unknown task registered")
	}
}
