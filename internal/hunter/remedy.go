// Deployment-side effectors for the remediation plane: the remedy
// engine owns policy, rails and sequencing (internal/remedy); this
// file owns mechanism — how each ActionKind actually lands on the
// cluster control plane, how topology mutations roll back, and what
// "healthy again" means in terms the deployment can observe.
package hunter

import (
	"fmt"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/remedy"
	"skeletonhunter/internal/topology"
)

// remedyOps wires the engine's effector surface to this deployment.
func (d *Deployment) remedyOps() remedy.Ops {
	return remedy.Ops{
		AffectedHosts: d.remedyAffectedHosts,
		Execute:       d.remedyExecute,
		Rollback:      d.remedyRollback,
		Healthy:       d.remedyHealthy,
		NoteAudit: func(comp component.ID, note string) {
			if d.Incidents != nil {
				d.Incidents.NoteRemediation(comp, note)
			}
		},
		NoteRepaired: func(comp component.ID, at time.Duration, how string) {
			if d.Incidents != nil {
				d.Incidents.NoteRepaired(comp, at, how)
			}
		},
	}
}

// remedyHost resolves the host a host-scoped action evacuates: the
// component's own host, or the NIC endpoint of an implicated link.
func (d *Deployment) remedyHost(comp component.ID) (int, bool) {
	if h, ok := component.HostOf(comp); ok {
		return h, true
	}
	if hs := component.LinkHosts(comp); len(hs) > 0 {
		return hs[0], true
	}
	return 0, false
}

// remedySwitch resolves the switch a cordon+drain takes out: the
// component's own switch, or the first switch endpoint of a
// switch-switch link.
func (d *Deployment) remedySwitch(comp component.ID) (topology.NodeID, bool) {
	if sw, ok := component.SwitchOf(comp); ok {
		return sw, true
	}
	if sws := component.LinkSwitches(comp); len(sws) > 0 {
		return sws[0], true
	}
	return "", false
}

// remedyAffectedHosts projects an action's blast-radius footprint —
// the hosts it takes out of service — before anything executes.
func (d *Deployment) remedyAffectedHosts(kind remedy.ActionKind, comp component.ID) []int {
	switch kind {
	case remedy.KindDrainHost:
		if h, ok := d.remedyHost(comp); ok {
			return []int{h}
		}
	case remedy.KindCordonDrainSwitch:
		if sw, ok := d.remedySwitch(comp); ok {
			return d.Fabric.HostsUnder(sw)
		}
	}
	// Restarts and in-place offload repairs consume no capacity.
	return nil
}

// remedyExecute performs one repair against the control plane.
func (d *Deployment) remedyExecute(kind remedy.ActionKind, comp component.ID) (string, error) {
	switch kind {
	case remedy.KindRestartContainer:
		name, ok := component.ContainerOf(comp)
		if !ok {
			return "", fmt.Errorf("component %s is not a container", comp)
		}
		c, err := d.CP.RestartContainer(cluster.ContainerID(name))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("restarted %s on host %d", name, c.Host), nil

	case remedy.KindDrainHost:
		h, ok := d.remedyHost(comp)
		if !ok {
			return "", fmt.Errorf("component %s has no host to drain", comp)
		}
		d.CP.CordonHost(h)
		moved, err := d.CP.DrainHost(h)
		if err != nil {
			return "", fmt.Errorf("drain host %d (moved %d): %w", h, moved, err)
		}
		return fmt.Sprintf("cordoned host %d, migrated %d container(s)", h, moved), nil

	case remedy.KindCordonDrainSwitch:
		sw, ok := d.remedySwitch(comp)
		if !ok {
			return "", fmt.Errorf("component %s has no switch to cordon", comp)
		}
		hosts := d.Fabric.HostsUnder(sw)
		if len(hosts) == 0 {
			return "", fmt.Errorf("switch %s serves no hosts in this fabric", sw)
		}
		// Cordon the whole span first so drained containers cannot land
		// back under the same bad switch, then evacuate host by host.
		for _, h := range hosts {
			d.CP.CordonHost(h)
		}
		total := 0
		for _, h := range hosts {
			moved, err := d.CP.DrainHost(h)
			total += moved
			if err != nil {
				return "", fmt.Errorf("drain %s: host %d (moved %d): %w", sw, h, total, err)
			}
		}
		return fmt.Sprintf("cordoned %d host(s) under %s, migrated %d container(s)", len(hosts), sw, total), nil

	case remedy.KindClearOffload:
		host, rail, ok := component.RNICOf(comp)
		if !ok {
			return "", fmt.Errorf("component %s is not an RNIC", comp)
		}
		vsw := d.Overlay.VSwitch(host)
		cleared := 0
		for _, k := range vsw.Keys() {
			if e, ok := vsw.Lookup(k); ok && e.Action.Rail == rail && e.Offloaded && e.OffloadStale {
				if d.Overlay.RestoreOffload(host, k.VNI, k.Dst) {
					cleared++
				}
			}
		}
		if cleared == 0 {
			return "", fmt.Errorf("no stale offload entries on host %d rail %d", host, rail)
		}
		return fmt.Sprintf("re-synchronized %d offload entr(y/ies) on host %d rail %d", cleared, host, rail), nil

	default:
		return "", fmt.Errorf("unknown action kind %v", kind)
	}
}

// remedyRollback undoes an action's topology mutations: cordons lift,
// so the localizer's world stops diverging from the scheduler's. What
// cannot be undone (migrations already performed, restarted
// containers) stays — the audit entry records it.
func (d *Deployment) remedyRollback(kind remedy.ActionKind, comp component.ID, hosts []int) {
	switch kind {
	case remedy.KindDrainHost, remedy.KindCordonDrainSwitch:
		for _, h := range hosts {
			d.CP.UncordonHost(h)
		}
	}
}

// remedyHealthy is the verify-then-commit check: has the component
// been symptom-free since the action executed? Two signals, both
// observable from monitoring state alone: for RNICs the offload dump
// must show no drift, and for everything the component's incident
// must not have alarmed after the action (with a short grace for
// detector windows that straddle the execution and drain stale
// pre-repair samples).
func (d *Deployment) remedyHealthy(comp component.ID, executedAt time.Duration) bool {
	if host, rail, ok := component.RNICOf(comp); ok {
		if dump := d.Overlay.DumpOffload(host, rail); len(dump.Inconsistent) > 0 {
			return false
		}
	}
	if d.Incidents == nil {
		return true
	}
	inc, ok := d.Incidents.Latest(comp)
	if !ok {
		return true
	}
	return inc.LastAlarmAt <= executedAt+2*d.sweepInterval
}
