package hunter

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/probe"
	"skeletonhunter/internal/topology"
)

// The metamorphic property of the analysis plane: the order in which
// agent batches *arrive* between two analysis rounds is an accident of
// transport scheduling, so permuting it must leave every analysis
// outcome — the alarm stream, the blacklist, and the incident
// fingerprint (which digests evidence bundles) — bit-identical. The
// permutations preserve each agent's own batch order, the guarantee a
// real collector has (per-sender FIFO over one TCP stream, arbitrary
// interleaving across senders).

// agentKey identifies one sidecar agent's batch stream.
type agentKey struct {
	task string
	c    int
}

// batchShuffler buffers every agent batch emitted between analysis
// rounds and re-delivers the buffer in a seeded random interleaving
// just before the round drains (via the analyzer's Gate hook, which
// runs at the top of every round).
type batchShuffler struct {
	d      *Deployment
	rng    *rand.Rand
	order  []agentKey
	queues map[agentKey][]probe.Batch
}

func installShuffler(d *Deployment, seed int64) *batchShuffler {
	s := &batchShuffler{
		d:      d,
		rng:    rand.New(rand.NewSource(seed)),
		queues: make(map[agentKey][]probe.Batch),
	}
	d.batchTap = s.tap
	d.Analyzer.Gate = func(time.Duration) bool {
		s.flush()
		return false
	}
	return s
}

// tap receives a batch in place of normal delivery. The batch's
// backing array is reused by the agent, so buffer a copy.
func (s *batchShuffler) tap(b probe.Batch) {
	if len(b) == 0 {
		return
	}
	k := agentKey{task: string(b[0].Task), c: b[0].SrcContainer}
	if _, ok := s.queues[k]; !ok {
		s.order = append(s.order, k)
	}
	s.queues[k] = append(s.queues[k], append(probe.Batch(nil), b...))
}

// flush delivers everything buffered: repeatedly pick a random agent
// that still has batches queued and deliver its oldest one.
func (s *batchShuffler) flush() {
	live := make([]agentKey, 0, len(s.order))
	for _, k := range s.order {
		if len(s.queues[k]) > 0 {
			live = append(live, k)
		}
	}
	for len(live) > 0 {
		i := s.rng.Intn(len(live))
		k := live[i]
		q := s.queues[k]
		s.d.ingestBatch(q[0])
		s.queues[k] = q[1:]
		if len(s.queues[k]) == 0 {
			live = append(live[:i], live[i+1:]...)
		}
	}
	s.order = s.order[:0]
	for k := range s.queues {
		delete(s.queues, k)
	}
}

// runArrivalScenario plays the two-tenant fault scenario of the
// determinism tests and renders every analysis outcome. shuffleSeed 0
// runs with normal batch delivery; any other seed buffers and shuffles
// batch arrival order between rounds.
func runArrivalScenario(t *testing.T, shuffleSeed int64) string {
	t.Helper()
	d, err := New(Options{
		Seed:    23,
		Spec:    topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:     fastLag(),
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var finish func()
	if shuffleSeed != 0 {
		s := installShuffler(d, shuffleSeed)
		finish = s.flush
	}
	t1, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute)

	a := t1.Containers[0].Addrs[0]
	if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: a.Rail}); err != nil {
		t.Fatal(err)
	}
	b := t2.Containers[1].Addrs[2]
	if _, err := d.Injector.Inject(faults.RNICPortFlapping, faults.Target{Host: b.Host, Rail: b.Rail}); err != nil {
		t.Fatal(err)
	}
	d.Run(3 * time.Minute)
	// Batches emitted since the last round are still buffered in the
	// shuffled run: deliver them before closing the windows, exactly as
	// the next round's Gate would have.
	if finish != nil {
		finish()
	}
	d.Analyzer.Flush(d.Engine.Now())

	var sb strings.Builder
	for _, al := range d.Analyzer.Alarms() {
		fmt.Fprintf(&sb, "alarm@%v\n", al.At)
		for _, an := range al.Anomalies {
			fmt.Fprintf(&sb, "  anomaly %+v %v @%v score=%.9g\n", an.Key, an.Type, an.At, an.Score)
		}
		for _, v := range al.Verdicts {
			fmt.Fprintf(&sb, "  verdict [%v] %v pairs=%d %s\n", v.Layer, v.Components, v.Pairs, v.Detail)
		}
	}
	bl := d.Analyzer.Blacklist()
	keys := make([]string, 0, len(bl))
	for c := range bl {
		keys = append(keys, string(c))
	}
	sort.Strings(keys)
	for _, c := range keys {
		at, _ := d.Analyzer.Blacklisted(component.ID(c))
		fmt.Fprintf(&sb, "blacklist %s @%v\n", c, at)
	}
	fmt.Fprintf(&sb, "incidents=%d fingerprint=%s\n", len(d.Incidents.Incidents()), d.Incidents.Fingerprint())
	return sb.String()
}

// TestArrivalOrderMetamorphic checks the property across several
// independent permutations of batch arrival order.
func TestArrivalOrderMetamorphic(t *testing.T) {
	want := runArrivalScenario(t, 0)
	if !strings.Contains(want, "alarm@") {
		t.Fatal("scenario raised no alarms; metamorphic test has no teeth")
	}
	if !strings.Contains(want, "incidents=") || strings.Contains(want, "incidents=0 ") {
		t.Fatal("scenario opened no incidents; fingerprint comparison has no teeth")
	}
	for _, seed := range []int64{7, 99, 4242} {
		if got := runArrivalScenario(t, seed); got != want {
			t.Fatalf("shuffle seed %d changed the analysis outcome:\n--- ordered ---\n%s--- shuffled ---\n%s", seed, want, got)
		}
	}
}
