package hunter

import (
	"fmt"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/probe"
	"skeletonhunter/internal/topology"
	"skeletonhunter/internal/transport"
)

// ServeTransport exposes the deployment's controller and analyzer over
// the real TCP wire protocol (§6), so external agents — or the
// examples exercising the deployment path — can register, fetch ping
// lists, and stream probe reports with per-task authentication.
// The returned server should be Closed by the caller.
func (d *Deployment) ServeTransport(addr string) (*transport.Server, error) {
	return transport.NewServer(addr, (*transportBackend)(d))
}

// TaskSecret returns the per-task shared secret agents authenticate
// with. Secrets are minted once per task at first request (a real
// control plane would mint them at task creation and inject them into
// the sidecars) and are stable thereafter.
func (d *Deployment) TaskSecret(id cluster.TaskID) (transport.Secret, bool) {
	if s, ok := d.secrets[id]; ok {
		return transport.Secret(s), true
	}
	if _, ok := d.CP.Task(id); !ok {
		return nil, false
	}
	r := d.Engine.Rand("task-secret/" + string(id))
	buf := make([]byte, 32)
	for i := range buf {
		buf[i] = byte(r.Intn(256))
	}
	s := fmt.Sprintf("%x", buf)
	d.secrets[id] = s
	return transport.Secret(s), true
}

// transportBackend adapts Deployment to transport.Backend.
type transportBackend Deployment

func (b *transportBackend) dep() *Deployment { return (*Deployment)(b) }

// SecretOf implements transport.Backend.
func (b *transportBackend) SecretOf(task string) (transport.Secret, bool) {
	return b.dep().TaskSecret(cluster.TaskID(task))
}

// Epoch implements transport.Backend: responses carry the controller
// incarnation so wire agents can detect a restart and re-register.
func (b *transportBackend) Epoch() uint64 {
	return b.dep().Controller.Epoch()
}

// Register implements transport.Backend.
func (b *transportBackend) Register(task string, container int) error {
	d := b.dep()
	t, ok := d.CP.Task(cluster.TaskID(task))
	if !ok {
		return fmt.Errorf("unknown task %s", task)
	}
	if container < 0 || container >= len(t.Containers) {
		return fmt.Errorf("container %d out of range", container)
	}
	d.Controller.Register(t.ID, container)
	return nil
}

// Deregister implements transport.Backend.
func (b *transportBackend) Deregister(task string, container int) error {
	b.dep().Controller.Deregister(cluster.TaskID(task), container)
	return nil
}

// PingList implements transport.Backend.
func (b *transportBackend) PingList(task string, container int) ([]transport.Target, error) {
	d := b.dep()
	targets := d.Controller.PingList(cluster.TaskID(task), container)
	out := make([]transport.Target, 0, len(targets))
	for _, t := range targets {
		out = append(out, transport.Target{
			SrcContainer: t.SrcContainer, SrcRail: t.SrcRail,
			DstContainer: t.DstContainer, DstRail: t.DstRail,
		})
	}
	return out, nil
}

// Report implements transport.Backend: wire reports become analyzer
// ingest records, resolving endpoint addresses through the control
// plane.
func (b *transportBackend) Report(task string, container int, reports []transport.ProbeReport) error {
	d := b.dep()
	t, ok := d.CP.Task(cluster.TaskID(task))
	if !ok {
		return fmt.Errorf("unknown task %s", task)
	}
	// Validate and convert the whole report, then ingest it as one
	// batch, mirroring the in-process agents' per-round path. A report
	// with any malformed entry is rejected wholesale.
	batch := make(probe.Batch, 0, len(reports))
	for _, r := range reports {
		if r.SrcContainer < 0 || r.SrcContainer >= len(t.Containers) ||
			r.DstContainer < 0 || r.DstContainer >= len(t.Containers) {
			return fmt.Errorf("report references container out of range")
		}
		src := t.Containers[r.SrcContainer]
		dst := t.Containers[r.DstContainer]
		if r.SrcRail < 0 || r.SrcRail >= len(src.Addrs) || r.DstRail < 0 || r.DstRail >= len(dst.Addrs) {
			return fmt.Errorf("report references rail out of range")
		}
		rec := probe.Record{
			Task:         t.ID,
			SrcContainer: r.SrcContainer, SrcRail: r.SrcRail,
			DstContainer: r.DstContainer, DstRail: r.DstRail,
			Src:  src.Addrs[r.SrcRail],
			Dst:  dst.Addrs[r.DstRail],
			At:   time.Duration(r.AtNanos),
			RTT:  time.Duration(r.RTTNanos),
			Lost: r.Lost,
		}
		for _, l := range r.Path {
			rec.Path = append(rec.Path, topology.LinkID(l))
		}
		batch = append(batch, rec)
	}
	d.ingestBatch(batch)
	return nil
}

// Stats implements transport.Backend.
func (b *transportBackend) Stats(task string) (full, basic, current int, phase string, err error) {
	d := b.dep()
	st, ok := d.Controller.StatsOf(cluster.TaskID(task))
	if !ok {
		return 0, 0, 0, "", fmt.Errorf("unknown task %s", task)
	}
	return st.FullMeshTargets, st.BasicTargets, st.CurrentTargets, st.Phase.String(), nil
}
