// Package hunter assembles a complete SkeletonHunter deployment over a
// simulated containerized training cloud: fabric + overlay + control
// plane (the infrastructure), controller + sidecar agents + analyzer
// (the monitoring system), and the fault injector (the evaluation
// harness). It is the public entry point examples and benchmarks use.
package hunter

import (
	"fmt"
	"sort"
	"time"

	"skeletonhunter/internal/analyzer"
	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/controller"
	"skeletonhunter/internal/detect"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/localize"
	"skeletonhunter/internal/logstore"
	"skeletonhunter/internal/netsim"
	"skeletonhunter/internal/overlay"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/probe"
	"skeletonhunter/internal/sim"
	"skeletonhunter/internal/skeleton"
	"skeletonhunter/internal/topology"
	"skeletonhunter/internal/traffic"
)

// Options configures a deployment.
type Options struct {
	// Seed drives every random stream (default 1).
	Seed int64
	// Hosts sizes the fabric via topology.Production (default 16).
	// Set Spec to override entirely.
	Hosts int
	Spec  topology.Spec
	// Detect tunes anomaly detection.
	Detect detect.Config
	// AnalysisInterval is the analyzer round period (default 30 s).
	AnalysisInterval time.Duration
	// Workers bounds the analyzer's per-round fan-out across task
	// shards (default GOMAXPROCS). Alarms are bit-identical at any
	// value; this only trades wall-clock for cores.
	Workers int
	// ProbeInterval is the agents' probing round period (default 1 s).
	ProbeInterval time.Duration
	// TransientCongestionProb adds benign latency spikes (noise).
	TransientCongestionProb float64
	// Lag overrides the container lifecycle delays (default: the
	// production-shaped model).
	Lag cluster.LagModel
	// AutoMigrate live-migrates running containers off hosts whose
	// components get blacklisted (§8's quick-recovery path). Default
	// off: the paper's deployed system alerts and blacklists, with
	// migration under development.
	AutoMigrate bool
	// DisableFeedback turns the alarm → blacklist/migration loop off:
	// alarms are still raised and recorded, but operations do not act
	// on them. Used by impact comparisons ("what would the month have
	// looked like without SkeletonHunter acting").
	DisableFeedback bool
}

// Deployment is a wired SkeletonHunter instance over a simulated cloud.
type Deployment struct {
	Engine     *sim.Engine
	Fabric     *topology.Fabric
	Overlay    *overlay.Network
	Net        *netsim.Net
	CP         *cluster.ControlPlane
	Controller *controller.Controller
	Analyzer   *analyzer.Analyzer
	Injector   *faults.Injector
	// Log retains recent probe records indexed by task/container/RNIC/
	// switch (§6's log service) for operator queries.
	Log *logstore.Store

	// OnAlarm, when set, receives every alarm after the deployment's
	// own feedback handling (blacklist propagation, auto-migration).
	OnAlarm func(analyzer.Alarm)

	probeInterval time.Duration
	autoMigrate   bool
	feedbackOff   bool
	agents        map[cluster.ContainerID]*probe.OverlayAgent
	stopped       map[cluster.TaskID]int
	blockedHosts  map[int]bool
	migrations    int
	overrides     map[cluster.TaskID]parallelism.Config
	inferences    map[cluster.TaskID]skeleton.Inference
	secrets       map[cluster.TaskID]string
}

// New builds and wires a deployment.
func New(opts Options) (*Deployment, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Hosts == 0 {
		opts.Hosts = 16
	}
	spec := opts.Spec
	if spec == (topology.Spec{}) {
		spec = topology.Production(opts.Hosts)
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = time.Second
	}
	eng := sim.NewEngine(opts.Seed)
	fab, err := topology.New(spec)
	if err != nil {
		return nil, err
	}
	ovl := overlay.NewNetwork()
	cp := cluster.NewControlPlane(eng, fab, ovl, opts.Lag)
	net := netsim.New(eng, fab, ovl)
	net.TransientCongestionProb = opts.TransientCongestionProb
	ctl := controller.New()
	ctl.Attach(cp)
	loc := localize.NewWithControlPlane(net, cp)
	an := analyzer.New(eng, loc, analyzer.Config{
		Detect:           opts.Detect,
		AnalysisInterval: opts.AnalysisInterval,
		Workers:          opts.Workers,
	})
	an.Start()

	d := &Deployment{
		Engine: eng, Fabric: fab, Overlay: ovl, Net: net,
		CP: cp, Controller: ctl, Analyzer: an,
		Injector:      faults.NewInjector(net, cp),
		Log:           logstore.New(1 << 16),
		probeInterval: opts.ProbeInterval,
		autoMigrate:   opts.AutoMigrate,
		feedbackOff:   opts.DisableFeedback,
		agents:        make(map[cluster.ContainerID]*probe.OverlayAgent),
		stopped:       make(map[cluster.TaskID]int),
		blockedHosts:  make(map[int]bool),
		overrides:     make(map[cluster.TaskID]parallelism.Config),
		inferences:    make(map[cluster.TaskID]skeleton.Inference),
		secrets:       make(map[cluster.TaskID]string),
	}
	cp.Subscribe(d.onClusterEvent)
	// Feedback loop: alarms blacklist hosts out of scheduling and,
	// optionally, trigger live migration off them.
	cp.HostSchedulable = func(h int) bool { return !d.blockedHosts[h] }
	an.OnAlarm = d.handleAlarm
	return d, nil
}

// ingestBatch is the per-round probe sink: each agent round's records
// land in the retained log and the analyzer's shard inbox in one call
// apiece, instead of once per record.
func (d *Deployment) ingestBatch(b probe.Batch) {
	d.Log.AppendBatch(b)
	d.Analyzer.IngestBatch(b)
}

// handleAlarm propagates verdicts into the scheduling blacklist and,
// when enabled, migrates running containers off implicated hosts.
func (d *Deployment) handleAlarm(al analyzer.Alarm) {
	if d.feedbackOff {
		if d.OnAlarm != nil {
			d.OnAlarm(al)
		}
		return
	}
	for _, c := range al.Components() {
		host, ok := component.HostOf(c)
		if !ok {
			continue
		}
		d.blockedHosts[host] = true
		if !d.autoMigrate {
			continue
		}
		for _, task := range d.CP.Tasks() {
			for _, ct := range task.Containers {
				if ct.Host == host && ct.State == cluster.Running {
					if _, err := d.CP.MigrateContainer(ct.ID); err == nil {
						d.migrations++
					}
				}
			}
		}
	}
	if d.OnAlarm != nil {
		d.OnAlarm(al)
	}
}

// BlockedHosts returns the hosts currently barred from scheduling.
func (d *Deployment) BlockedHosts() []int {
	var out []int
	for h := range d.blockedHosts {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// UnblockHost readmits a repaired host to scheduling.
func (d *Deployment) UnblockHost(h int) { delete(d.blockedHosts, h) }

// Migrations returns the number of auto-migrations performed.
func (d *Deployment) Migrations() int { return d.migrations }

// onClusterEvent starts/stops sidecar agents with their containers.
func (d *Deployment) onClusterEvent(ev cluster.Event) {
	switch ev.Kind {
	case cluster.EvContainerRunning:
		a := &probe.OverlayAgent{
			Engine:     d.Engine,
			Net:        d.Net,
			Controller: d.Controller,
			Task:       ev.Task,
			Container:  ev.Container,
			BatchSink:  d.ingestBatch,
			Interval:   d.probeInterval,
		}
		a.Start()
		d.agents[ev.Container.ID] = a
	case cluster.EvContainerStopped:
		if a, ok := d.agents[ev.Container.ID]; ok {
			a.Stop()
			delete(d.agents, ev.Container.ID)
		}
		// Graceful stop: the control plane vouches for the departure, so
		// the analyzer drops the container's half-open windows.
		d.Analyzer.ForgetContainer(string(ev.Task.ID), ev.Container.Index)
		d.countStopped(ev)
	case cluster.EvContainerCrashed:
		// Ungraceful: the sidecar dies with the container but nothing
		// deregisters — peers keep probing and raise unconnectivity.
		if a, ok := d.agents[ev.Container.ID]; ok {
			a.Kill()
			delete(d.agents, ev.Container.ID)
		}
		d.countStopped(ev)
	}
}

func (d *Deployment) countStopped(ev cluster.Event) {
	d.stopped[ev.Task.ID]++
	if ev.Task.Finished && d.stopped[ev.Task.ID] == len(ev.Task.Containers) {
		d.Analyzer.ForgetTask(string(ev.Task.ID))
		delete(d.stopped, ev.Task.ID)
	}
}

// SubmitTask submits a training task to the simulated cloud.
func (d *Deployment) SubmitTask(spec cluster.TaskSpec) (*cluster.Task, error) {
	return d.CP.Submit(spec)
}

// Run advances the simulation by the given duration.
func (d *Deployment) Run(dur time.Duration) {
	d.Engine.RunUntil(d.Engine.Now() + dur)
}

// CollectSeries gathers the per-endpoint throughput series the
// production system reads from RNIC counters. The simulation
// synthesizes them from the task's (tenant-private) parallelism — the
// inference below must not peek at cfg, only at the series.
func (d *Deployment) CollectSeries(task *cluster.Task, dur time.Duration) []skeleton.EndpointSeries {
	par := task.Par
	if ov, ok := d.overrides[task.ID]; ok {
		par = ov
	}
	gen := &traffic.Generator{
		Par:              par,
		GPUsPerContainer: task.GPUsPerContainer,
		Seed:             d.Engine.Rand("traffic-seed/" + string(task.ID)).Int63(),
	}
	var eps []skeleton.EndpointSeries
	for _, c := range controller.EndpointOrder(task) {
		for r := 0; r < task.GPUsPerContainer; r++ {
			eps = append(eps, skeleton.EndpointSeries{
				Container: c.Index,
				Rail:      r,
				Host:      c.Host,
				Series:    gen.Series(parallelism.Endpoint{Container: c.Index, Rail: r}, dur),
			})
		}
	}
	return eps
}

// InferSkeleton observes a task's traffic for obsWindow, infers its
// traffic skeleton, and installs the pruned ping list on the
// controller. It returns the inference for inspection.
func (d *Deployment) InferSkeleton(task *cluster.Task, obsWindow time.Duration) (skeleton.Inference, error) {
	eps := d.CollectSeries(task, obsWindow)
	inf, err := skeleton.Infer(eps, skeleton.Options{})
	if err != nil {
		return skeleton.Inference{}, fmt.Errorf("hunter: skeleton inference for %s: %w", task.ID, err)
	}
	if err := d.Controller.ApplySkeleton(task.ID, inf); err != nil {
		return skeleton.Inference{}, err
	}
	d.inferences[task.ID] = inf
	return inf, nil
}

// OverrideWorkload changes what traffic a task emits from now on —
// the simulation hook for a tenant switching models or parallelism
// strategies mid-task (§7.3's "users' uncertain workloads"). The
// override only affects the synthesized RNIC counters; the monitoring
// system is not told.
func (d *Deployment) OverrideWorkload(id cluster.TaskID, par parallelism.Config) {
	d.overrides[id] = par
}

// FidelityThreshold is the revalidation cut-off: an installed skeleton
// scoring below it no longer matches the observed traffic and the task
// reverts to its basic ping list.
const FidelityThreshold = 0.5

// RevalidateSkeleton re-checks an installed skeleton against a fresh
// observation window (§7.3's mitigation). It returns the fidelity
// score and whether the task was reverted to the basic list.
func (d *Deployment) RevalidateSkeleton(task *cluster.Task, obsWindow time.Duration) (float64, bool) {
	inf, ok := d.inferences[task.ID]
	if !ok {
		return 0, false
	}
	eps := d.CollectSeries(task, obsWindow)
	score := skeleton.Fidelity(eps, inf.Groups, skeleton.Options{})
	if score < FidelityThreshold {
		d.Controller.RevertToBasic(task.ID)
		delete(d.inferences, task.ID)
		return score, true
	}
	return score, false
}

// Agents returns the number of live sidecar agents.
func (d *Deployment) Agents() int { return len(d.agents) }
