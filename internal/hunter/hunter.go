// Package hunter assembles a complete SkeletonHunter deployment over a
// simulated containerized training cloud: fabric + overlay + control
// plane (the infrastructure), controller + sidecar agents + analyzer
// (the monitoring system), and the fault injector (the evaluation
// harness). It is the public entry point examples and benchmarks use.
package hunter

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"skeletonhunter/internal/analyzer"
	"skeletonhunter/internal/apiserver"
	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/controller"
	"skeletonhunter/internal/correlate"
	"skeletonhunter/internal/detect"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/incident"
	"skeletonhunter/internal/localize"
	"skeletonhunter/internal/logstore"
	"skeletonhunter/internal/netsim"
	"skeletonhunter/internal/obs"
	"skeletonhunter/internal/overlay"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/pipeline"
	"skeletonhunter/internal/probe"
	"skeletonhunter/internal/remedy"
	"skeletonhunter/internal/sim"
	"skeletonhunter/internal/skeleton"
	"skeletonhunter/internal/topology"
	"skeletonhunter/internal/traffic"
)

// Options configures a deployment.
type Options struct {
	// Seed drives every random stream (default 1).
	Seed int64
	// Hosts sizes the fabric via topology.Production (default 16).
	// Set Spec to override entirely.
	Hosts int
	Spec  topology.Spec
	// Detect tunes anomaly detection.
	Detect detect.Config
	// AnalysisInterval is the analyzer round period (default 30 s).
	AnalysisInterval time.Duration
	// Workers bounds the analyzer's per-round fan-out across task
	// shards (default GOMAXPROCS). Alarms are bit-identical at any
	// value; this only trades wall-clock for cores.
	Workers int
	// ProbeInterval is the agents' probing round period (default 1 s).
	ProbeInterval time.Duration
	// TransientCongestionProb adds benign latency spikes (noise).
	TransientCongestionProb float64
	// Lag overrides the container lifecycle delays (default: the
	// production-shaped model).
	Lag cluster.LagModel
	// AutoMigrate live-migrates running containers off hosts whose
	// components get blacklisted (§8's quick-recovery path). Default
	// off: the paper's deployed system alerts and blacklists, with
	// migration under development.
	AutoMigrate bool
	// DisableFeedback turns the alarm → blacklist/migration loop off:
	// alarms are still raised and recorded, but operations do not act
	// on them. Used by impact comparisons ("what would the month have
	// looked like without SkeletonHunter acting").
	DisableFeedback bool
	// InboxLimit bounds each analyzer shard's inbox; overflow records
	// are shed and counted (see analyzer.Config.InboxLimit). 0 takes
	// the analyzer default, negative means unbounded.
	InboxLimit int
	// CheckpointInterval enables periodic control-plane checkpoints on
	// the sim engine (0 disables; checkpoints can still be taken
	// explicitly with Deployment.Checkpoint). An injected controller
	// crash recovers from the most recent one.
	CheckpointInterval time.Duration
	// RecoveryGrace overrides how long restored (stale-epoch) agent
	// leases keep serving after a recovery before they expire (default
	// controller.DefaultRecoveryGrace).
	RecoveryGrace time.Duration
	// Incidents tunes the alarm→incident correlator (zero values take
	// the incident package defaults). The correlator is on by default;
	// DisableIncidents turns the incident plane off entirely.
	Incidents        incident.Config
	DisableIncidents bool
	// Correlate, when non-nil, enables the second-layer gray-failure
	// detector: CUSUM change-points over per-pair RTT, per-RNIC
	// delivery-ratio and per-ToR queue-depth series, with stable-bloom
	// dedup and lead-lag causal chains. Gray alarms flow into the
	// incident plane as a distinct source (page-with-evidence; the
	// remediation plane never acts on them) and the engine's state is
	// carried in checkpoint v4. Zero-value config takes the correlate
	// package defaults (the engine's own seed defaults to Options.Seed).
	Correlate *correlate.Config
	// Remedy, when non-nil, enables the self-healing remediation plane:
	// the policy engine consumes the incident stream each sweep and
	// repairs localized faults behind the configured safety rails
	// (Config.Hosts is filled in from the fabric if zero). Requires the
	// incident plane.
	Remedy *remedy.Config
	// HTTPAddr, when non-empty, serves the operator query API on that
	// address ("127.0.0.1:0" picks a free port; read it back from
	// Deployment.API.Addr()). API tunes the server's self-protection.
	HTTPAddr string
	API      apiserver.Config
}

// Deployment is a wired SkeletonHunter instance over a simulated cloud.
type Deployment struct {
	Engine     *sim.Engine
	Fabric     *topology.Fabric
	Overlay    *overlay.Network
	Net        *netsim.Net
	CP         *cluster.ControlPlane
	Controller *controller.Controller
	Analyzer   *analyzer.Analyzer
	Injector   *faults.Injector
	// Localizer is the three-stage disentangler the analyzer's shards
	// share. Exposed so scenario packs can corrupt and refresh its
	// topology View (the flap+ghost campaign); swap View only from an
	// engine event, never mid-round.
	Localizer *localize.Localizer
	// Log retains recent probe records indexed by task/container/RNIC/
	// switch (§6's log service) for operator queries.
	Log *logstore.Store
	// Incidents folds alarms into long-lived operator incidents with
	// evidence bundles (nil when Options.DisableIncidents).
	Incidents *incident.Correlator
	// Remedy is the self-healing policy engine (nil unless
	// Options.Remedy was set).
	Remedy *remedy.Engine
	// Correlate is the second-layer gray-failure detector (nil unless
	// Options.Correlate was set).
	Correlate *correlate.Engine
	// API is the HTTP read plane over the deployment's monitoring
	// state (nil unless Options.HTTPAddr was set).
	API *apiserver.Server
	// Obs is the deployment-wide self-monitoring surface: one Stats
	// shared by the agents, the log store, and the analyzer. Read it
	// via Stats(), which folds in the pipeline's per-stage counts.
	Obs *obs.Stats

	// OnAlarm, when set, receives every alarm after the deployment's
	// own feedback handling (blacklist propagation, auto-migration).
	OnAlarm func(analyzer.Alarm)
	// OnGray, when set, receives every changed correlate alarm after
	// the deployment folds it into the incident plane.
	OnGray func(correlate.Alarm)

	probeInterval time.Duration
	sweepInterval time.Duration
	autoMigrate   bool
	feedbackOff   bool
	telemetry     *faults.TelemetryInjector
	batchTap      probe.BatchSink // test seam: intercepts agent batches before delivery
	rounds        *probe.RoundEngine
	staged        map[cluster.TaskID]*logstore.Staged // per-task sharded log staging
	agents        map[cluster.ContainerID]*probe.OverlayAgent
	stopped       map[cluster.TaskID]int
	blockedHosts  map[int]bool
	migrations    int
	overrides     map[cluster.TaskID]parallelism.Config
	inferences    map[cluster.TaskID]skeleton.Inference
	secrets       map[cluster.TaskID]string
	lastCkpt      *Checkpoint

	// refreshAPI's cached snapshot inputs: the cloned incident set,
	// alarm copy and rendered blacklist entries are rebuilt only when
	// their sources actually changed (correlator revision; append-only
	// alarm/blacklist lengths — every mutation point calls refreshAPI,
	// so a length is a sound change stamp). See refreshAPI.
	apiIncidents    []incident.Incident
	apiIncidentsRev uint64
	apiAlarms       []analyzer.Alarm
	apiBlacklist    []apiserver.BlacklistEntry
}

// New builds and wires a deployment.
func New(opts Options) (*Deployment, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Hosts == 0 {
		opts.Hosts = 16
	}
	spec := opts.Spec
	if spec == (topology.Spec{}) {
		spec = topology.Production(opts.Hosts)
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = time.Second
	}
	eng := sim.NewEngine(opts.Seed)
	fab, err := topology.New(spec)
	if err != nil {
		return nil, err
	}
	ovl := overlay.NewNetwork()
	cp := cluster.NewControlPlane(eng, fab, ovl, opts.Lag)
	net := netsim.New(eng, fab, ovl)
	net.TransientCongestionProb = opts.TransientCongestionProb
	ctl := controller.New()
	ctl.Attach(cp)
	ctl.UseClock(eng.Now)
	if opts.RecoveryGrace > 0 {
		ctl.SetRecoveryGrace(opts.RecoveryGrace)
	}
	loc := localize.NewWithControlPlane(net, cp)
	st := obs.New()
	var cor *correlate.Engine
	if opts.Correlate != nil {
		cc := *opts.Correlate
		if cc.Seed == 0 {
			cc.Seed = opts.Seed
		}
		cc.Obs = st
		cor = correlate.New(cc)
		// Queue-depth series: one sample per ToR per round, enumerated
		// in (pod, rail) order so the sampling — and everything CUSUM
		// derives from it — is deterministic.
		cor.Queues = func() []correlate.QueueSample {
			out := make([]correlate.QueueSample, 0, spec.Pods*spec.Rails)
			for p := 0; p < spec.Pods; p++ {
				for r := 0; r < spec.Rails; r++ {
					n := fab.ToR(p, r)
					out = append(out, correlate.QueueSample{Node: n, Depth: net.QueueLength(n)})
				}
			}
			return out
		}
	}
	an := analyzer.New(eng, loc, analyzer.Config{
		Detect:           opts.Detect,
		AnalysisInterval: opts.AnalysisInterval,
		Workers:          opts.Workers,
		InboxLimit:       opts.InboxLimit,
		Obs:              st,
		Correlate:        cor,
	})
	an.Start()
	log := logstore.New(1 << 16)
	log.Obs = st

	d := &Deployment{
		Engine: eng, Fabric: fab, Overlay: ovl, Net: net,
		CP: cp, Controller: ctl, Analyzer: an,
		Localizer:     loc,
		Injector:      faults.NewInjector(net, cp),
		Log:           log,
		Obs:           st,
		probeInterval: opts.ProbeInterval,
		autoMigrate:   opts.AutoMigrate,
		feedbackOff:   opts.DisableFeedback,
		staged:        make(map[cluster.TaskID]*logstore.Staged),
		agents:        make(map[cluster.ContainerID]*probe.OverlayAgent),
		stopped:       make(map[cluster.TaskID]int),
		blockedHosts:  make(map[int]bool),
		overrides:     make(map[cluster.TaskID]parallelism.Config),
		inferences:    make(map[cluster.TaskID]skeleton.Inference),
		secrets:       make(map[cluster.TaskID]string),
	}
	// Parallel round engine: every sidecar agent enrolls here instead of
	// running a per-agent ticker. Same-phase agents fire as one event,
	// sharded by task across Workers goroutines; the deployment itself
	// is the shard sink (see roundSink).
	d.rounds = &probe.RoundEngine{
		Sim:     eng,
		Net:     net,
		Workers: opts.Workers,
		Sink:    roundSink{d},
		Obs:     st,
	}
	cp.Subscribe(d.onClusterEvent)
	// Feedback loop: alarms blacklist hosts out of scheduling and,
	// optionally, trigger live migration off them.
	cp.HostSchedulable = func(h int) bool { return !d.blockedHosts[h] }
	an.OnAlarm = d.handleAlarm
	if cor != nil {
		d.Correlate = cor
		an.OnGray = d.handleGrayAlarm
	}
	if opts.CheckpointInterval > 0 {
		eng.Every(opts.CheckpointInterval, opts.CheckpointInterval, "checkpoint",
			func(time.Duration) { d.Checkpoint() })
	}
	if !opts.DisableIncidents {
		d.Incidents = incident.New(opts.Incidents, incident.Sources{
			Records:     d.evidenceRecords,
			QueueLength: net.QueueLength,
			Offload:     ovl.DumpOffload,
		})
		d.Incidents.Obs = st
		// Resolution sweeps ride the analysis-round cadence: incidents
		// can only change on alarms or sweeps, so this is also where the
		// API's published view refreshes.
		sweep := opts.AnalysisInterval
		if sweep == 0 {
			sweep = 30 * time.Second
		}
		d.sweepInterval = sweep
		if opts.Remedy != nil {
			rc := *opts.Remedy
			if rc.Hosts == 0 {
				rc.Hosts = fab.Hosts()
			}
			d.Remedy = remedy.NewEngine(rc, d.remedyOps())
			d.Remedy.Obs = st
		}
		eng.Every(sweep, sweep, "incident-sweep", func(now time.Duration) {
			d.Incidents.Sweep(now)
			if d.Remedy != nil {
				d.Remedy.Tick(now, d.Incidents.Incidents())
			}
			d.refreshAPI()
		})
	}
	if opts.HTTPAddr != "" {
		d.API = apiserver.New(opts.API)
		d.refreshAPI()
		if err := d.API.Start(opts.HTTPAddr); err != nil {
			return nil, fmt.Errorf("hunter: query API: %w", err)
		}
	}
	return d, nil
}

// emitBatch is the agents' batch sink. The batchTap seam, when set,
// takes the batch instead of the normal delivery path — the metamorphic
// tests use it to buffer and re-interleave agent batches, checking that
// ingest order between agents cannot change an analysis outcome.
func (d *Deployment) emitBatch(b probe.Batch) {
	if d.batchTap != nil {
		d.batchTap(b)
		return
	}
	d.deliverBatch(b)
}

// deliverBatch is the normal delivery path: the telemetry-fault
// injector (when installed) sits between the agent and ingest,
// dropping, duplicating, or reordering round batches. A nil injector
// delivers verbatim.
func (d *Deployment) deliverBatch(b probe.Batch) {
	d.telemetry.Deliver(b, d.ingestBatch)
}

// ingestBatch is the per-round probe sink: each agent round's records
// land in the retained log and the analyzer's shard inbox in one call
// apiece, instead of once per record.
func (d *Deployment) ingestBatch(b probe.Batch) {
	d.Obs.Inc(obs.BatchesIngested)
	d.Log.AppendBatch(b)
	d.Analyzer.IngestBatch(b)
}

// roundSink is the deployment's probe.ShardSink: the sharded fast path
// grouped probe rounds land through when no batch tap or active
// telemetry injector requires serial delivery.
//
// Worker-side (Consume, one goroutine per task shard): batches stage
// into per-task logstore buffers and the analyzer's pre-warmed shard
// inboxes — no global lock on the hot path. Barrier-side (Commit,
// serial): staged buffers land in the ring in sorted task order, so log
// content is deterministic at any worker count.
type roundSink struct{ d *Deployment }

// FastOK gates the sharded path. A batch tap (test seam) or an active
// telemetry injector must see batches serially, in order, one at a
// time — those rounds fall back to per-agent delivery.
func (rs roundSink) FastOK() bool {
	return rs.d.batchTap == nil && rs.d.telemetry.Passive()
}

// Prepare pre-creates the round's per-task state serially so Consume
// callers only ever read the maps: the analyzer shard and the log
// staging buffer for every task probing this round.
func (rs roundSink) Prepare(tasks []cluster.TaskID) {
	for _, t := range tasks {
		rs.d.Analyzer.WarmShard(string(t))
		if rs.d.staged[t] == nil {
			rs.d.staged[t] = logstore.NewStaged()
		}
	}
}

// Consume lands one agent round's batch for its task shard. Runs on a
// worker goroutine; the round engine guarantees one goroutine per task,
// so the staged buffer and the analyzer shard inbox are single-writer.
func (rs roundSink) Consume(task cluster.TaskID, b probe.Batch) {
	if len(b) == 0 {
		return
	}
	rs.d.Obs.Inc(obs.BatchesIngested)
	rs.d.staged[task].Add(b)
	rs.d.Analyzer.IngestBatch(b)
}

// Commit merges the round at the barrier: staged log buffers land in
// sorted task order (deterministic ring content, one lock acquisition
// per task).
func (rs roundSink) Commit(now time.Duration) {
	keys := make([]cluster.TaskID, 0, len(rs.d.staged))
	for t, st := range rs.d.staged {
		if st.Len() > 0 {
			keys = append(keys, t)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, t := range keys {
		rs.d.Log.CommitStaged(rs.d.staged[t])
	}
}

// SetTelemetryFaults installs (or, with zero options, effectively
// clears) telemetry-plane fault injection: batch drop/duplication/
// reordering on the ingest path, probabilistic analysis-round delays,
// and frozen controller ping lists. Safe to call mid-run; campaigns
// typically enable it after the deployment reaches steady state.
func (d *Deployment) SetTelemetryFaults(opts faults.TelemetryOptions) {
	d.telemetry = faults.NewTelemetryInjector(d.Engine, opts, d.Obs)
	d.Analyzer.Gate = d.telemetry.GateRound
	d.Controller.SetFrozen(opts.StalePingLists)
}

// AgentRestartStorm kills the given fraction of live sidecar agents
// and schedules each for restart downFor later — the crash/restart
// storm of a bad agent rollout. Selection draws from a named engine
// stream over sorted container IDs, so storms replay deterministically.
// The containers themselves keep running: peers still probe their
// endpoints successfully, so a storm costs probing coverage without
// manufacturing network alarms. An agent is only restarted if its
// container is still Running and no newer agent exists. Returns the
// number of agents killed.
func (d *Deployment) AgentRestartStorm(frac float64, downFor time.Duration) int {
	ids := make([]cluster.ContainerID, 0, len(d.agents))
	for id := range d.agents {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rng := d.Engine.Rand("telemetry/agent-storm")
	killed := 0
	for _, id := range ids {
		if rng.Float64() >= frac {
			continue
		}
		a := d.agents[id]
		a.Kill()
		delete(d.agents, id)
		d.Obs.Inc(obs.AgentCrashes)
		killed++
		task, ct := a.Task, a.Container
		d.Engine.After(downFor, "agent-restart", func(time.Duration) {
			if ct.State != cluster.Running {
				return
			}
			if _, live := d.agents[ct.ID]; live {
				return
			}
			d.startAgent(task, ct)
			d.Obs.Inc(obs.AgentRestarts)
		})
	}
	return killed
}

// handleGrayAlarm folds one correlate-layer alarm into the incident
// plane. Deliberately no feedback: gray signals never blacklist hosts
// or trigger migrations — they page with evidence (chains included)
// and wait for an operator or for the hard detector to confirm.
func (d *Deployment) handleGrayAlarm(al correlate.Alarm) {
	if d.Incidents != nil {
		d.Incidents.ObserveGray(al)
		d.refreshAPI()
	}
	if d.OnGray != nil {
		d.OnGray(al)
	}
}

// handleAlarm folds the alarm into the incident plane, propagates
// verdicts into the scheduling blacklist and, when enabled, migrates
// running containers off implicated hosts.
func (d *Deployment) handleAlarm(al analyzer.Alarm) {
	if d.Incidents != nil {
		d.Incidents.ObserveAlarm(al)
	}
	if d.feedbackOff {
		// Alarms are recorded (and incidents opened) but operations do
		// not act, so nothing is ever marked mitigated.
		d.refreshAPI()
		if d.OnAlarm != nil {
			d.OnAlarm(al)
		}
		return
	}
	for _, c := range al.Components() {
		migrated, stranded := 0, 0
		if host, ok := component.HostOf(c); ok {
			d.blockedHosts[host] = true
			if d.autoMigrate {
				for _, task := range d.CP.Tasks() {
					for _, ct := range task.Containers {
						if ct.Host == host && ct.State == cluster.Running {
							switch _, err := d.CP.MigrateContainer(ct.ID); {
							case err == nil:
								d.migrations++
								migrated++
							case errors.Is(err, cluster.ErrNoMigration):
								// Every spare is blacklisted or cordoned: the
								// container is stranded on a known-bad host.
								// Count it and note it on the incident so the
								// condition pages instead of vanishing.
								d.Obs.Inc(obs.MigrationsExhausted)
								stranded++
							}
						}
					}
				}
			}
		}
		if stranded > 0 && d.Incidents != nil {
			d.Incidents.NoteRemediation(c, fmt.Sprintf(
				"auto-migration exhausted: %d container(s) stranded (no schedulable spare)", stranded))
		}
		// The analyzer put the component on the §8 blacklist the moment
		// the alarm raised; that (plus any migration) is the mitigation
		// the incident's SLO clock stops on.
		if d.Incidents != nil {
			how := "blacklist"
			if migrated > 0 {
				how = fmt.Sprintf("blacklist+migration(%d)", migrated)
			}
			d.Incidents.NoteMitigated(c, al.At, how)
		}
	}
	d.refreshAPI()
	if d.OnAlarm != nil {
		d.OnAlarm(al)
	}
}

// BlockedHosts returns the hosts currently barred from scheduling.
func (d *Deployment) BlockedHosts() []int {
	var out []int
	for h := range d.blockedHosts {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// UnblockHost readmits a repaired host to scheduling.
func (d *Deployment) UnblockHost(h int) { delete(d.blockedHosts, h) }

// Migrations returns the number of auto-migrations performed.
func (d *Deployment) Migrations() int { return d.migrations }

// startAgent deploys a sidecar agent for a running container — both
// the with-container path (EvContainerRunning) and the restart path
// after an agent-only crash.
func (d *Deployment) startAgent(task *cluster.Task, ct *cluster.Container) {
	a := &probe.OverlayAgent{
		Engine:     d.Engine,
		Net:        d.Net,
		Controller: d.Controller,
		Task:       task,
		Container:  ct,
		BatchSink:  d.emitBatch,
		Driver:     d.rounds,
		Interval:   d.probeInterval,
		Obs:        d.Obs,
	}
	a.Start()
	d.agents[ct.ID] = a
}

// onClusterEvent starts/stops sidecar agents with their containers.
func (d *Deployment) onClusterEvent(ev cluster.Event) {
	switch ev.Kind {
	case cluster.EvContainerRunning:
		// A container with a StoppedAt stamp is a remediation restart of
		// a crashed container, not a first start: its earlier departure
		// was counted, so the departure ledger rolls back one.
		if ev.Container.StoppedAt > 0 && d.stopped[ev.Task.ID] > 0 {
			d.stopped[ev.Task.ID]--
		}
		d.startAgent(ev.Task, ev.Container)
	case cluster.EvContainerStopped:
		if a, ok := d.agents[ev.Container.ID]; ok {
			a.Stop()
			delete(d.agents, ev.Container.ID)
		}
		// Graceful stop: the control plane vouches for the departure, so
		// the analyzer drops the container's half-open windows.
		d.Analyzer.ForgetContainer(string(ev.Task.ID), ev.Container.Index)
		d.countStopped(ev)
	case cluster.EvContainerCrashed:
		// Ungraceful: the sidecar dies with the container but nothing
		// deregisters — peers keep probing and raise unconnectivity.
		if a, ok := d.agents[ev.Container.ID]; ok {
			a.Kill()
			delete(d.agents, ev.Container.ID)
		}
		d.countStopped(ev)
	}
}

// countStopped tracks container departures and tears a task's
// monitoring state down once every container is gone — however it
// went. A task whose containers all crash never flips Finished, so
// gating cleanup on it leaked the stopped-count entry, the analyzer's
// per-pair detector shard, and the controller's registry entry for
// every crashed-out task.
func (d *Deployment) countStopped(ev cluster.Event) {
	d.stopped[ev.Task.ID]++
	if d.stopped[ev.Task.ID] == len(ev.Task.Containers) {
		d.Analyzer.ForgetTask(string(ev.Task.ID))
		d.Controller.RemoveTask(ev.Task.ID)
		delete(d.stopped, ev.Task.ID)
		delete(d.staged, ev.Task.ID)
	}
}

// SubmitTask submits a training task to the simulated cloud.
func (d *Deployment) SubmitTask(spec cluster.TaskSpec) (*cluster.Task, error) {
	return d.CP.Submit(spec)
}

// Run advances the simulation by the given duration.
func (d *Deployment) Run(dur time.Duration) {
	d.Engine.RunUntil(d.Engine.Now() + dur)
}

// CollectSeries gathers the per-endpoint throughput series the
// production system reads from RNIC counters. The simulation
// synthesizes them from the task's (tenant-private) parallelism — the
// inference below must not peek at cfg, only at the series.
func (d *Deployment) CollectSeries(task *cluster.Task, dur time.Duration) []skeleton.EndpointSeries {
	par := task.Par
	if ov, ok := d.overrides[task.ID]; ok {
		par = ov
	}
	gen := &traffic.Generator{
		Par:              par,
		GPUsPerContainer: task.GPUsPerContainer,
		Seed:             d.Engine.Rand("traffic-seed/" + string(task.ID)).Int63(),
	}
	var eps []skeleton.EndpointSeries
	for _, c := range controller.EndpointOrder(task) {
		for r := 0; r < task.GPUsPerContainer; r++ {
			eps = append(eps, skeleton.EndpointSeries{
				Container: c.Index,
				Rail:      r,
				Host:      c.Host,
				Series:    gen.Series(parallelism.Endpoint{Container: c.Index, Rail: r}, dur),
			})
		}
	}
	return eps
}

// InferSkeleton observes a task's traffic for obsWindow, infers its
// traffic skeleton, and installs the pruned ping list on the
// controller. It returns the inference for inspection.
func (d *Deployment) InferSkeleton(task *cluster.Task, obsWindow time.Duration) (skeleton.Inference, error) {
	eps := d.CollectSeries(task, obsWindow)
	inf, err := skeleton.Infer(eps, skeleton.Options{})
	if err != nil {
		return skeleton.Inference{}, fmt.Errorf("hunter: skeleton inference for %s: %w", task.ID, err)
	}
	if err := d.Controller.ApplySkeleton(task.ID, inf); err != nil {
		return skeleton.Inference{}, err
	}
	d.inferences[task.ID] = inf
	return inf, nil
}

// OverrideWorkload changes what traffic a task emits from now on —
// the simulation hook for a tenant switching models or parallelism
// strategies mid-task (§7.3's "users' uncertain workloads"). The
// override only affects the synthesized RNIC counters; the monitoring
// system is not told.
func (d *Deployment) OverrideWorkload(id cluster.TaskID, par parallelism.Config) {
	d.overrides[id] = par
}

// FidelityThreshold is the revalidation cut-off: an installed skeleton
// scoring below it no longer matches the observed traffic and the task
// reverts to its basic ping list.
const FidelityThreshold = 0.5

// RevalidateSkeleton re-checks an installed skeleton against a fresh
// observation window (§7.3's mitigation). It returns the fidelity
// score and whether the task was reverted to the basic list.
func (d *Deployment) RevalidateSkeleton(task *cluster.Task, obsWindow time.Duration) (float64, bool) {
	inf, ok := d.inferences[task.ID]
	if !ok {
		return 0, false
	}
	eps := d.CollectSeries(task, obsWindow)
	score := skeleton.Fidelity(eps, inf.Groups, skeleton.Options{})
	if score < FidelityThreshold {
		d.Controller.RevertToBasic(task.ID)
		delete(d.inferences, task.ID)
		return score, true
	}
	return score, false
}

// Agents returns the number of live sidecar agents.
func (d *Deployment) Agents() int { return len(d.agents) }

// Stats snapshots the deployment's self-monitoring state: every obs
// counter and histogram, with the analyzer's per-stage pipeline counts
// folded in under "pipeline-<stage>" keys and the log-store index size
// under "logstore-index-keys"/"logstore-index-entries".
func (d *Deployment) Stats() obs.Snapshot {
	snap := d.Obs.Snapshot()
	pc := d.Analyzer.Stats()
	for _, s := range pipeline.Stages() {
		snap.Counters["pipeline-"+s.String()] = pc.Get(s)
	}
	keys, entries := d.Log.IndexStats()
	snap.Counters["logstore-index-keys"] = uint64(keys)
	snap.Counters["logstore-index-entries"] = uint64(entries)
	// Worker utilization of the parallel round engine: busy time over
	// offered capacity (wall × workers), as a percentage.
	if wall := snap.Counters[obs.WorkerWallNanos.String()]; wall > 0 {
		busy := snap.Counters[obs.WorkerBusyNanos.String()]
		snap.Counters["worker-utilization-pct"] = busy * 100 / wall
	}
	if d.Incidents != nil {
		open, mitigating, resolved := d.Incidents.Counts()
		snap.Counters["incidents-open"] = uint64(open)
		snap.Counters["incidents-mitigating"] = uint64(mitigating)
		snap.Counters["incidents-resolved-now"] = uint64(resolved)
	}
	if d.Remedy != nil {
		deferred, verifying := d.Remedy.Pending()
		snap.Counters["remedy-deferred-now"] = uint64(deferred)
		snap.Counters["remedy-verifying-now"] = uint64(verifying)
	}
	if d.Correlate != nil {
		alarms, suppressed, chains := d.Correlate.Counts()
		snap.Counters["correlate-alarms"] = uint64(alarms)
		snap.Counters["correlate-suppressed"] = uint64(suppressed)
		snap.Counters["correlate-chains"] = uint64(chains)
		snap.Counters["correlate-series"] = uint64(d.Correlate.SeriesCount())
	}
	if d.API != nil {
		for k, v := range d.API.Stats() {
			snap.Counters[k] = v
		}
	}
	return snap
}
