// Scenario-pack acceptance: the three adversarial campaigns of
// internal/scenario run end to end on a real deployment, their ground
// truth is scored, and the campaign outcome is bit-identical across
// round-engine worker counts and across a mid-campaign controller
// crash/recovery. External test package: internal/scenario imports
// hunter, so these tests must sit outside package hunter to avoid an
// import cycle.
package hunter_test

import (
	"math/rand"
	"testing"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/detect"
	"skeletonhunter/internal/hunter"
	"skeletonhunter/internal/scenario"
	"skeletonhunter/internal/topology"
)

// packSeed pins every acceptance campaign: the packs are deterministic
// per seed, so the assertions below are exact, not statistical.
const packSeed = 7

func packLag() cluster.LagModel {
	return cluster.LagModel{
		CreateLag:    func(r *rand.Rand, i int) time.Duration { return time.Duration(i) * time.Second },
		StartupDelay: func(r *rand.Rand) time.Duration { return 5 * time.Second },
		StopLag:      func(r *rand.Rand) time.Duration { return time.Second },
	}
}

type packOptions struct {
	workers            int
	checkpointInterval time.Duration
	hosts              int
}

func packDeployment(t *testing.T, o packOptions) *hunter.Deployment {
	t.Helper()
	hostsPerPod := 8
	if o.hosts > 0 {
		hostsPerPod = o.hosts
	}
	d, err := hunter.New(hunter.Options{
		Seed: packSeed,
		Spec: topology.Spec{Pods: 1, HostsPerPod: hostsPerPod, Rails: 8, AggPerPod: 2},
		Lag:  packLag(),
		// Compressed timescale: flap down-windows average 30 s, so the
		// detector folds 10 s windows at a 10 s analysis cadence.
		Detect:             detect.Config{ShortWindow: 10 * time.Second},
		AnalysisInterval:   10 * time.Second,
		Workers:            o.workers,
		CheckpointInterval: o.checkpointInterval,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runPack plays one pack (or a pre-built schedule) to its horizon and
// returns the deployment and run log for scoring.
func runPack(t *testing.T, s *scenario.Schedule, o packOptions) (*hunter.Deployment, *scenario.RunLog) {
	t.Helper()
	d := packDeployment(t, o)
	log, err := scenario.Run(d, s)
	if err != nil {
		t.Fatal(err)
	}
	return d, log
}

func packSchedule(t *testing.T, name string) *scenario.Schedule {
	t.Helper()
	fab, err := topology.New(topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := scenario.Pack(name, fab, packSeed)
	if !ok {
		t.Fatalf("unknown pack %q", name)
	}
	return s
}

// TestFlapGhostAcceptance is the flap+ghost pack's deterministic
// acceptance run: while the stale view hides the flapping links,
// strict (localization) recall collapses relative to a clean arm with
// the identical fault schedule; once the view refreshes, it recovers
// to within 10 points of the clean arm's same-phase recall — the
// scenariobench CI gate, asserted here at the unit level.
func TestFlapGhostAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("14-minute simulated campaign")
	}
	s := packSchedule(t, "flap-ghost")
	clean := s.Strip(scenario.ActGhostView, scenario.ActRefreshView)

	gd, glog := runPack(t, s, packOptions{})
	cd, _ := runPack(t, clean, packOptions{})

	if !glog.HasGhost || !glog.HasRefresh {
		t.Fatalf("ghost/refresh never fired: %+v", glog)
	}
	ghostFrom, ghostTo := glog.GhostAt, glog.RefreshAt
	postFrom, postTo := glog.RefreshAt, s.Horizon

	ghostPhase := scenario.FlapPhaseRecall(gd.Injector.Injections(), gd.Analyzer.Alarms(), ghostFrom, ghostTo)
	cleanGhostPhase := scenario.FlapPhaseRecall(cd.Injector.Injections(), cd.Analyzer.Alarms(), ghostFrom, ghostTo)
	post := scenario.FlapPhaseRecall(gd.Injector.Injections(), gd.Analyzer.Alarms(), postFrom, postTo)
	cleanPost := scenario.FlapPhaseRecall(cd.Injector.Injections(), cd.Analyzer.Alarms(), postFrom, postTo)

	// The stale view must actually hurt: localization during the ghost
	// phase falls well below the clean arm's.
	if cleanGhostPhase == 0 {
		t.Fatalf("clean arm localized nothing in the ghost phase (recall %v) — pack miscalibrated", cleanGhostPhase)
	}
	if ghostPhase >= cleanGhostPhase {
		t.Fatalf("ghost view did not degrade localization: ghost %v ≥ clean %v", ghostPhase, cleanGhostPhase)
	}
	// The CI gate: post-refresh recall recovers to within 10 points of
	// the clean arm's same-phase recall.
	if post < cleanPost-0.10 {
		t.Fatalf("post-refresh recall %v did not recover to within 10%% of clean arm %v", post, cleanPost)
	}
}

// TestRDMAMaskAcceptance is the rdma-mask pack's deterministic
// acceptance run: the loss staircase under transport retry collapses
// the collective job, and at least one ground-truth episode is
// detected strictly before the collapse — the scenariobench CI gate.
func TestRDMAMaskAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("12-minute simulated campaign")
	}
	s := packSchedule(t, "rdma-mask")
	d, log := runPack(t, s, packOptions{})

	if len(log.Jobs) == 0 {
		t.Fatalf("no collective job started: errs %v", log.Errs)
	}
	collapse, collapsed := log.CollapseAt()
	if !collapsed {
		t.Fatal("loss staircase never collapsed the collective job")
	}
	// The collapse belongs to the final (past-retry-budget) step.
	if collapse < 9*time.Minute {
		t.Fatalf("collective collapsed at %v, before the 9m step that outruns the retry budget", collapse)
	}
	if !scenario.PreCollapseDetection(d.Injector.Injections(), d.Analyzer.Alarms(), collapse) {
		t.Fatalf("no episode detected before the collapse at %v (the SHIFT failure mode)", collapse)
	}
}

// TestChurnReplayAcceptance is the churn-replay pack's deterministic
// acceptance run: trace-driven container churn neither hides the two
// hard faults (recall) nor masquerades as failures (precision).
func TestChurnReplayAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("14-minute simulated campaign")
	}
	s := packSchedule(t, "churn-replay")
	d, log := runPack(t, s, packOptions{})

	if len(log.Errs) != 0 {
		t.Fatalf("scenario errors: %v", log.Errs)
	}
	if log.Inferences == 0 {
		t.Fatal("churn never exercised skeleton inference")
	}
	ps := scenario.ScorePack(log, d.Injector.Injections(), d.Analyzer.Alarms())
	if ps.Episodes != 2 {
		t.Fatalf("episodes = %d, want 2 hard-fault episodes", ps.Episodes)
	}
	if ps.Recall != 1 {
		t.Fatalf("hard faults lost in the churn: recall %v (score %+v)", ps.Recall, ps)
	}
	if ps.Precision != 1 {
		t.Fatalf("churn produced false alarms: precision %v (score %+v)", ps.Precision, ps)
	}
}

// TestScenarioPackWorkerDeterminism is the metamorphic battery's first
// axis: every pack's outcome fingerprint — alarms, blacklist,
// incidents — is bit-identical at 1, 4, and 16 round-engine workers.
func TestScenarioPackWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("nine simulated campaigns")
	}
	for _, name := range scenario.PackNames {
		t.Run(name, func(t *testing.T) {
			s := packSchedule(t, name)
			d1, _ := runPack(t, s, packOptions{workers: 1})
			want := d1.Fingerprint()
			for _, workers := range []int{4, 16} {
				d, _ := runPack(t, s, packOptions{workers: workers})
				if got := d.Fingerprint(); got != want {
					t.Fatalf("pack %s fingerprint diverges at %d workers:\n  1:  %s\n  %d: %s",
						name, workers, want, workers, got)
				}
			}
		})
	}
}

// TestScenarioPackCrashDeterminism is the battery's second axis: a
// mid-campaign controller crash and checkpoint recovery is itself
// deterministic — two crashed replays of the same pack land on the
// same fingerprint — and the crash completes (the campaign does not
// wedge against a dead controller).
func TestScenarioPackCrashDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("six simulated campaigns")
	}
	crashed := func(name string) string {
		s := packSchedule(t, name)
		d := packDeployment(t, packOptions{checkpointInterval: 2 * time.Minute})
		if _, err := scenario.Install(d, s); err != nil {
			t.Fatal(err)
		}
		// Crash after the 6:00 checkpoint, mid-campaign for every pack
		// (horizons are 12–14 m), recover after 60 s of downtime.
		rec := d.ScheduleControllerCrash(7*time.Minute+10*time.Second, time.Minute)
		d.Run(s.Horizon)
		if !rec.Crashed || !rec.Restored {
			t.Fatalf("pack %s crash did not complete: %+v", name, rec)
		}
		return d.Fingerprint()
	}
	for _, name := range scenario.PackNames {
		t.Run(name, func(t *testing.T) {
			a := crashed(name)
			b := crashed(name)
			if a != b {
				t.Fatalf("pack %s crash recovery not deterministic:\n  %s\n  %s", name, a, b)
			}
		})
	}
}
