package hunter

import (
	"math/rand"
	"testing"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/metrics"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/topology"
)

// fastLag makes container lifecycles quick and deterministic so tests
// reach steady state fast.
func fastLag() cluster.LagModel {
	return cluster.LagModel{
		CreateLag:    func(r *rand.Rand, i int) time.Duration { return time.Duration(i) * time.Second },
		StartupDelay: func(r *rand.Rand) time.Duration { return 5 * time.Second },
		StopLag:      func(r *rand.Rand) time.Duration { return time.Second },
	}
}

func newDeployment(t *testing.T) *Deployment {
	t.Helper()
	d, err := New(Options{
		Seed: 11,
		Spec: topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:  fastLag(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func steadyTask(t *testing.T, d *Deployment) *cluster.Task {
	t.Helper()
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(time.Minute) // all containers running, agents probing
	if got := len(task.RunningContainers()); got != 4 {
		t.Fatalf("running containers = %d", got)
	}
	if d.Agents() != 4 {
		t.Fatalf("agents = %d", d.Agents())
	}
	return task
}

func TestHealthySteadyStateRaisesNoAlarms(t *testing.T) {
	d := newDeployment(t)
	steadyTask(t, d)
	d.Run(10 * time.Minute)
	if got := len(d.Analyzer.Alarms()); got != 0 {
		t.Fatalf("healthy deployment raised %d alarms: %+v", got, d.Analyzer.Alarms()[0])
	}
}

func TestEndToEndSwitchPortDown(t *testing.T) {
	d := newDeployment(t)
	task := steadyTask(t, d)
	d.Run(5 * time.Minute) // build detector history

	a := task.Containers[0].Addrs[3]
	nic := topology.NIC{Host: a.Host, Rail: 3}
	link := topology.MakeLinkID(nic.ID(), d.Fabric.ToR(0, 3))
	in, err := d.Injector.Inject(faults.SwitchPortDown, faults.Target{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(3 * time.Minute)
	d.Injector.Clear(in)

	rep := metrics.Score(d.Injector.Injections(), d.Analyzer.Alarms(), time.Minute)
	if rep.DetectedInjections != 1 {
		t.Fatalf("fault not detected: %+v", rep)
	}
	if rep.LocalizedInjections != 1 {
		t.Fatalf("fault not localized: alarms %+v", d.Analyzer.Alarms())
	}
	// Detection latency: within ~2 analysis rounds of onset.
	if rep.MeanDetectionLatency > 90*time.Second {
		t.Fatalf("detection latency = %v", rep.MeanDetectionLatency)
	}
	// The faulty component landed on the blacklist.
	found := false
	for _, c := range in.Components {
		if _, ok := d.Analyzer.Blacklisted(c); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("component not blacklisted; blacklist = %v", d.Analyzer.Blacklist())
	}
}

func TestEndToEndFig18CaseStudy(t *testing.T) {
	// The production case study: offloaded flow entries invalidated on
	// one RNIC; latency 16 µs → ~120 µs with a trickle of loss; the
	// system detects the latency anomaly, tomography is exonerated by
	// healthy reverse traffic, the flow-table dump pins the RNIC; after
	// isolation (clearing), metrics return to normal.
	d := newDeployment(t)
	task := steadyTask(t, d)
	d.Run(5 * time.Minute)

	a := task.Containers[0].Addrs[6]
	in, err := d.Injector.Inject(faults.OffloadingFailure, faults.Target{Host: a.Host, Rail: 6, VNI: a.VNI})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(2 * time.Minute)

	rep := metrics.Score(d.Injector.Injections(), d.Analyzer.Alarms(), time.Minute)
	if rep.DetectedInjections != 1 || rep.LocalizedInjections != 1 {
		t.Fatalf("Fig.18 case: detected=%d localized=%d; alarms=%+v",
			rep.DetectedInjections, rep.LocalizedInjections, d.Analyzer.Alarms())
	}

	// Recovery: clear (isolate + reset) and verify alarms stop.
	d.Injector.Clear(in)
	before := len(d.Analyzer.Alarms())
	d.Run(90 * time.Second) // anomalous history drains
	d.Run(5 * time.Minute)
	after := d.Analyzer.Alarms()[before:]
	late := 0
	for _, al := range after {
		if al.At > d.Engine.Now()-4*time.Minute {
			late++
		}
	}
	if late > 0 {
		t.Fatalf("alarms continued %d rounds after recovery", late)
	}
}

func TestEndToEndContainerCrash(t *testing.T) {
	d := newDeployment(t)
	task := steadyTask(t, d)
	d.Run(5 * time.Minute)
	victim := task.Containers[2]
	in, err := d.Injector.Inject(faults.ContainerCrash, faults.Target{Container: victim.ID})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(2 * time.Minute)
	rep := metrics.Score(d.Injector.Injections(), d.Analyzer.Alarms(), time.Minute)
	if rep.DetectedInjections != 1 {
		t.Fatalf("crash not detected")
	}
	if rep.LocalizedInjections != 1 {
		t.Fatalf("crash not localized to %v; alarms %+v", in.Components, d.Analyzer.Alarms())
	}
	// Verdict names the exact container via control-plane resolution.
	found := false
	for _, al := range d.Analyzer.Alarms() {
		for _, c := range al.Components() {
			if c == component.Container(string(victim.ID)) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no verdict names the crashed container by ID")
	}
}

func TestSkeletonLifecyclePrunesProbing(t *testing.T) {
	d := newDeployment(t)
	task := steadyTask(t, d)
	stBefore, _ := d.Controller.StatsOf(task.ID)
	inf, err := d.InferSkeleton(task, 900*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if inf.DP != 2 || inf.TPxPP != 16 {
		t.Fatalf("inference DP=%d TPxPP=%d, want 2/16", inf.DP, inf.TPxPP)
	}
	stAfter, _ := d.Controller.StatsOf(task.ID)
	if stAfter.CurrentTargets >= stBefore.CurrentTargets {
		t.Fatalf("skeleton did not prune: %d → %d", stBefore.CurrentTargets, stAfter.CurrentTargets)
	}
	// Probing still works and detects faults on skeleton paths.
	d.Run(5 * time.Minute)
	a := task.Containers[0].Addrs[0]
	if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: 0}); err != nil {
		t.Fatal(err)
	}
	d.Run(2 * time.Minute)
	rep := metrics.Score(d.Injector.Injections(), d.Analyzer.Alarms(), time.Minute)
	if rep.DetectedInjections != 1 {
		t.Fatal("fault on skeleton path not detected after pruning")
	}
}

func TestSkeletonRevalidation(t *testing.T) {
	d := newDeployment(t)
	task := steadyTask(t, d)
	if _, err := d.InferSkeleton(task, 900*time.Second); err != nil {
		t.Fatal(err)
	}
	// Stable workload: fidelity high, no revert.
	score, reverted := d.RevalidateSkeleton(task, 900*time.Second)
	if reverted || score < FidelityThreshold {
		t.Fatalf("stable workload reverted (score %v)", score)
	}
	if d.Controller.PhaseOf(task.ID) != 1 { // PhaseSkeleton
		t.Fatal("phase regressed despite high fidelity")
	}
	// The tenant switches parallelism strategy (same GPU count): the
	// installed skeleton goes stale and revalidation must fall back.
	d.OverrideWorkload(task.ID, parallelism.Config{TP: 8, PP: 4, DP: 1})
	score, reverted = d.RevalidateSkeleton(task, 900*time.Second)
	if !reverted {
		t.Fatalf("stale skeleton not reverted (score %v)", score)
	}
	if d.Controller.PhaseOf(task.ID) != 0 { // PhasePreload
		t.Fatal("task not back on the basic list")
	}
	// Revalidating again without an inference is a no-op.
	if _, reverted := d.RevalidateSkeleton(task, 900*time.Second); reverted {
		t.Fatal("revert reported without an installed skeleton")
	}
}

func TestStartupChurnNoFalseAlarms(t *testing.T) {
	// Challenge 1: containers start minutes apart; incremental
	// activation must keep the startup phase alarm-free.
	d, err := New(Options{
		Seed: 13,
		Spec: topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag: cluster.LagModel{
			CreateLag:    func(r *rand.Rand, i int) time.Duration { return time.Duration(i) * 45 * time.Second },
			StartupDelay: func(r *rand.Rand) time.Duration { return 30 * time.Second },
			StopLag:      func(r *rand.Rand) time.Duration { return time.Second },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}}); err != nil {
		t.Fatal(err)
	}
	d.Run(10 * time.Minute) // staggered startups complete inside this
	if got := len(d.Analyzer.Alarms()); got != 0 {
		t.Fatalf("startup churn raised %d alarms", got)
	}
}

func TestMultiTenantIsolationOfAlarms(t *testing.T) {
	// Two tenants share the fabric; a fault afflicting only tenant 1's
	// host must not implicate tenant 2's pairs or components.
	d, err := New(Options{
		Seed: 23,
		Spec: topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:  fastLag(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(6 * time.Minute)
	if t1.VNI == t2.VNI {
		t.Fatal("tenants share a VNI")
	}

	// Host-board fault on one of tenant 1's hosts.
	badHost := t1.Containers[0].Host
	in, err := d.Injector.Inject(faults.PCIeNICError, faults.Target{Host: badHost})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(2 * time.Minute)
	d.Injector.Clear(in)

	alarms := d.Analyzer.Alarms()
	if len(alarms) == 0 {
		t.Fatal("fault not detected")
	}
	for _, al := range alarms {
		for _, an := range al.Anomalies {
			if an.Key.Task != string(t1.ID) {
				t.Fatalf("tenant-2 pair implicated: %+v", an.Key)
			}
		}
	}
	// Tenant 2's probes stayed healthy throughout.
	a := t2.Containers[0].Addrs[0]
	b := t2.Containers[1].Addrs[0]
	if res := d.Net.Probe(a, b, 1); res.Lost || res.RTT > 40*time.Microsecond {
		t.Fatalf("tenant-2 path unhealthy: %v/%v", res.Lost, res.RTT)
	}
}

func TestTaskTeardownCleansUp(t *testing.T) {
	d := newDeployment(t)
	task := steadyTask(t, d)
	d.Run(2 * time.Minute)
	d.CP.FinishTask(task.ID)
	d.Run(2 * time.Minute)
	if d.Agents() != 0 {
		t.Fatalf("agents alive after teardown: %d", d.Agents())
	}
	// No alarms from teardown itself (agents deregister before probing
	// a dying peer for a full window).
	if got := len(d.Analyzer.Alarms()); got != 0 {
		t.Fatalf("teardown raised %d alarms", got)
	}
}

func TestLogServiceIndexesProbeStream(t *testing.T) {
	d := newDeployment(t)
	task := steadyTask(t, d)
	d.Run(2 * time.Minute)
	// Task-indexed records flowed in.
	byTask := d.Log.ByTask(string(task.ID), 0)
	if len(byTask) == 0 {
		t.Fatal("log service retained nothing")
	}
	// Per-RNIC evidence trail for an operator inspecting rail 0 of the
	// first container's host.
	c0 := task.Containers[0]
	byRNIC := d.Log.ByRNIC(c0.Host, 0, 0)
	if len(byRNIC) == 0 {
		t.Fatal("no RNIC-indexed records")
	}
	for _, r := range byRNIC {
		if r.Src.Host != c0.Host && r.Dst.Host != c0.Host {
			t.Fatalf("RNIC index returned unrelated record: %+v", r)
		}
	}
	// Switch-indexed: the rail-0 ToR saw same-rail probes.
	bySwitch := d.Log.BySwitch(d.Fabric.ToR(0, 0), 0)
	if len(bySwitch) == 0 {
		t.Fatal("no switch-indexed records")
	}
}

func TestBlacklistKeepsNewTasksOffBadHosts(t *testing.T) {
	d := newDeployment(t)
	task := steadyTask(t, d)
	d.Run(5 * time.Minute)
	badHost := task.Containers[0].Host
	in, err := d.Injector.Inject(faults.PCIeNICError, faults.Target{Host: badHost})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(2 * time.Minute)
	d.Injector.Clear(in)
	blocked := d.BlockedHosts()
	found := false
	for _, h := range blocked {
		if h == badHost {
			found = true
		}
	}
	if !found {
		t.Fatalf("host %d not blocked; blocked = %v", badHost, blocked)
	}
	// Finish the first task and submit a new one: it must avoid the
	// blocked host even though that host is free again.
	d.CP.FinishTask(task.ID)
	d.Run(2 * time.Minute)
	t2, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range t2.Containers {
		if c.Host == badHost {
			t.Fatalf("new task scheduled on blacklisted host %d", badHost)
		}
	}
	// After repair, the operator readmits the host.
	d.UnblockHost(badHost)
	if len(d.BlockedHosts()) != len(blocked)-1 {
		t.Fatal("unblock did not shrink the blocklist")
	}
}

func TestAutoMigrationRecoversTask(t *testing.T) {
	d, err := New(Options{
		Seed:        17,
		Spec:        topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:         fastLag(),
		AutoMigrate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(6 * time.Minute)

	victim := task.Containers[0]
	badHost := victim.Host
	// A host-board latency fault: the container is healthy but its host
	// is bad — the §8 migration case.
	in, err := d.Injector.Inject(faults.PCIeNICError, faults.Target{Host: badHost})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(2 * time.Minute)
	if d.Migrations() == 0 {
		t.Fatalf("no auto-migration happened; blocked=%v alarms=%d", d.BlockedHosts(), len(d.Analyzer.Alarms()))
	}
	if victim.Host == badHost {
		t.Fatalf("container still on bad host %d", badHost)
	}
	// Post-migration, with the fault still active on the old host,
	// probes among the task run clean: verify directly.
	a := victim.Addrs[0]
	b := task.Containers[1].Addrs[0]
	for i := 0; i < 20; i++ {
		res := d.Net.Probe(a, b, uint64(i))
		if res.Lost || res.RTT > 40*time.Microsecond {
			t.Fatalf("post-migration probe unhealthy: lost=%v rtt=%v", res.Lost, res.RTT)
		}
	}
	d.Injector.Clear(in)
}

func TestChurnStressNoFalseAlarmsNoLeaks(t *testing.T) {
	// Challenge 1 at small scale: a stream of short-lived tasks churns
	// containers continuously (creations, registrations, teardowns)
	// with a healthy network. The monitoring system must stay silent
	// and must not leak per-task state.
	if testing.Short() {
		t.Skip("soak scenario; run without -short")
	}
	d, err := New(Options{
		Seed: 31,
		Spec: topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:  fastLag(),
	})
	if err != nil {
		t.Fatal(err)
	}
	launched := 0
	for wave := 0; wave < 10; wave++ {
		// Two short tasks per wave, partially overlapping lifetimes.
		for i := 0; i < 2; i++ {
			if _, err := d.SubmitTask(cluster.TaskSpec{
				Par:      parallelism.Config{TP: 8, PP: 2, DP: 1},
				Lifetime: 90 * time.Second,
			}); err != nil {
				t.Fatalf("wave %d: %v", wave, err)
			}
			launched++
		}
		d.Run(2 * time.Minute)
	}
	d.Run(3 * time.Minute) // full drain
	if launched != 20 {
		t.Fatalf("launched %d tasks", launched)
	}
	if got := len(d.Analyzer.Alarms()); got != 0 {
		t.Fatalf("churn produced %d false alarms: %+v", got, d.Analyzer.Alarms()[0])
	}
	if d.Agents() != 0 {
		t.Fatalf("%d agents leaked", d.Agents())
	}
	if free := d.CP.FreeHosts(); free != 8 {
		t.Fatalf("hosts leaked: %d free of 8", free)
	}
}

func TestProductionScaleMultiPodSmoke(t *testing.T) {
	// A larger fabric with multiple pods (cross-pod ECMP in play),
	// three concurrent tenants, and faults at different layers —
	// the closest thing to a cluster soak test that fits in CI.
	if testing.Short() {
		t.Skip("soak scenario; run without -short")
	}
	d, err := New(Options{
		Seed: 29,
		Spec: topology.Spec{Pods: 2, HostsPerPod: 8, Rails: 8, AggPerPod: 2, Spines: 4},
		Lag:  fastLag(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks []*cluster.Task
	for i := 0; i < 3; i++ {
		task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	d.Run(6 * time.Minute)
	if d.Agents() != 12 {
		t.Fatalf("agents = %d, want 12", d.Agents())
	}
	// Task 3 spans both pods (hosts 8..11 are pod 1).
	crossPod := false
	for _, c := range tasks[2].Containers {
		if d.Fabric.PodOf(c.Host) == 1 {
			crossPod = true
		}
	}
	if !crossPod {
		t.Fatal("third task did not spill into pod 1; scale the spec")
	}

	// Three faults at different layers, overlapping in time.
	a0 := tasks[0].Containers[0].Addrs[1]
	nic := topology.NIC{Host: a0.Host, Rail: 1}
	link := topology.MakeLinkID(nic.ID(), d.Fabric.ToR(d.Fabric.PodOf(a0.Host), 1))
	in1, err := d.Injector.Inject(faults.SwitchPortDown, faults.Target{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	in2, err := d.Injector.Inject(faults.PCIeNICError, faults.Target{Host: tasks[1].Containers[1].Host})
	if err != nil {
		t.Fatal(err)
	}
	a2 := tasks[2].Containers[0].Addrs[3]
	in3, err := d.Injector.Inject(faults.OffloadingFailure, faults.Target{Host: a2.Host, Rail: 3, VNI: a2.VNI})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(3 * time.Minute)
	for _, in := range []*faults.Injection{in1, in2, in3} {
		d.Injector.Clear(in)
	}
	rep := metrics.Score(d.Injector.Injections(), d.Analyzer.Alarms(), time.Minute)
	if rep.DetectedInjections != 3 {
		t.Fatalf("detected %d/3 concurrent faults", rep.DetectedInjections)
	}
	if rep.LocalizedInjections < 3 {
		t.Fatalf("localized %d/3; alarms: %+v", rep.LocalizedInjections, d.Analyzer.Alarms())
	}
}

func TestMetricsFalsePositiveAccounting(t *testing.T) {
	// An alarm with no active injection counts against precision.
	d := newDeployment(t)
	task := steadyTask(t, d)
	d.Run(5 * time.Minute)
	a := task.Containers[0].Addrs[0]
	in, _ := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: 0})
	d.Run(2 * time.Minute)
	d.Injector.Clear(in)
	rep := metrics.Score(d.Injector.Injections(), d.Analyzer.Alarms(), time.Minute)
	if rep.Precision() < 0.99 {
		t.Fatalf("precision = %v with one real fault", rep.Precision())
	}
	if rep.Recall() != 1 {
		t.Fatalf("recall = %v", rep.Recall())
	}
	if rep.LocalizationAccuracy() != 1 {
		t.Fatalf("localization accuracy = %v", rep.LocalizationAccuracy())
	}
}
