package hunter

import (
	"testing"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/obs"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/topology"
)

// runWorkerCampaign plays a two-tenant fault scenario at the given
// round-engine/analyzer worker count and digests the outcome (alarms,
// blacklist, incidents) into the deployment fingerprint. With crash
// set, the controller crashes mid-campaign and recovers from the last
// periodic checkpoint while parallel rounds keep firing.
func runWorkerCampaign(t *testing.T, workers int, crash bool) (string, int) {
	t.Helper()
	d, err := New(Options{
		Seed:               23,
		Spec:               topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:                fastLag(),
		Workers:            workers,
		CheckpointInterval: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute)

	a := t1.Containers[0].Addrs[0]
	if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: a.Rail}); err != nil {
		t.Fatal(err)
	}
	b := t2.Containers[1].Addrs[2]
	if _, err := d.Injector.Inject(faults.RNICPortFlapping, faults.Target{Host: b.Host, Rail: b.Rail}); err != nil {
		t.Fatal(err)
	}
	d.Run(time.Minute)
	if crash {
		d.CrashController()
		d.Run(30 * time.Second)
		if err := d.RecoverFromLast(); err != nil {
			t.Fatal(err)
		}
	}
	d.Run(2 * time.Minute)
	d.Analyzer.Flush(d.Engine.Now())

	if got := d.Obs.Get(obs.ProbeRoundsGrouped); got == 0 {
		t.Fatal("campaign never fired a grouped probe round; parallel engine not engaged")
	}
	return d.Fingerprint(), len(d.Analyzer.Alarms())
}

// TestWorkerCountDeterminism is the tentpole acceptance check: alarms,
// blacklist, and incident fingerprints must be bit-identical for
// -workers 1, 4, and 16 on the same seed — including a campaign that
// crashes and recovers the controller while parallel rounds run.
func TestWorkerCountDeterminism(t *testing.T) {
	for _, crash := range []bool{false, true} {
		base, alarms := runWorkerCampaign(t, 1, crash)
		if !crash && alarms == 0 {
			t.Fatal("scenario raised no alarms; determinism check has no teeth")
		}
		for _, w := range []int{4, 16} {
			if got, _ := runWorkerCampaign(t, w, crash); got != base {
				t.Errorf("crash=%v: workers=%d fingerprint %s != workers=1 fingerprint %s",
					crash, w, got, base)
			}
		}
	}
}

// TestParallelRoundRaceCampaign drives many task shards through the
// parallel round engine at workers=4 with faults active — the
// shard-ownership contract (worker-owned probe contexts, per-task
// staged buffers, pre-warmed analyzer shards) is certified by `make
// race` running this test under the race detector.
func TestParallelRoundRaceCampaign(t *testing.T) {
	d, err := New(Options{
		Seed:    7,
		Spec:    topology.Spec{Pods: 1, HostsPerPod: 16, Rails: 8, AggPerPod: 2},
		Lag:     fastLag(),
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Six 2-host tenants: six task shards, so four workers genuinely
	// run concurrently each grouped round.
	for i := 0; i < 6; i++ {
		if _, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	d.Run(3 * time.Minute)
	if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: 2, Rail: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Injector.Inject(faults.SwitchPortDown, faults.Target{
		Link: topology.MakeLinkID(topology.NIC{Host: 5, Rail: 3}.ID(), d.Fabric.ToR(0, 3)),
	}); err != nil {
		t.Fatal(err)
	}
	d.Run(3 * time.Minute)
	d.Analyzer.Flush(d.Engine.Now())

	if d.Agents() == 0 {
		t.Fatal("no live agents")
	}
	stats := d.Stats().Counters
	if stats[obs.ProbeRoundsGrouped.String()] == 0 {
		t.Fatal("no grouped probe rounds fired")
	}
	if stats[obs.BatchesIngested.String()] == 0 {
		t.Fatal("no batches ingested through the sharded path")
	}
	if stats[obs.WorkerBusyNanos.String()] == 0 {
		t.Fatal("worker busy accounting never recorded")
	}
}
