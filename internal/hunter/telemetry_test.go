package hunter

import (
	"errors"
	"testing"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/metrics"
	"skeletonhunter/internal/obs"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/topology"
)

// TestCrashedOutTaskStateCleanedUp is the regression for the
// countStopped leak: a task whose containers ALL crash never flips
// Finished (FinishTask is a graceful path), so cleanup gated on
// Finished left the stopped-count entry, the analyzer's per-pair
// detector shard, and the controller's registry entry behind forever.
func TestCrashedOutTaskStateCleanedUp(t *testing.T) {
	d := newDeployment(t)
	task := steadyTask(t, d)
	d.Run(2 * time.Minute)
	if d.Analyzer.Shards() != 1 {
		t.Fatalf("shards = %d before crash", d.Analyzer.Shards())
	}

	for _, ct := range task.Containers {
		if !d.CP.CrashContainer(ct.ID) {
			t.Fatalf("crash of %s failed", ct.ID)
		}
	}
	d.Run(2 * time.Minute)

	if d.Agents() != 0 {
		t.Fatalf("agents alive after full crash: %d", d.Agents())
	}
	if len(d.stopped) != 0 {
		t.Fatalf("stopped-count entries leaked: %v", d.stopped)
	}
	if d.Analyzer.Shards() != 0 {
		t.Fatalf("analyzer shard leaked for crashed-out task (%d live)", d.Analyzer.Shards())
	}
	if _, ok := d.Controller.StatsOf(task.ID); ok {
		t.Fatal("controller registry entry leaked for crashed-out task")
	}
}

// TestAutoMigrationNoSpareHosts pins the feedback path's failure mode:
// with auto-migration on and every spare host blacklisted, migration
// must fail with ErrNoMigration, the container stays put, and the
// deployment keeps alarming rather than wedging.
func TestAutoMigrationNoSpareHosts(t *testing.T) {
	d, err := New(Options{
		Seed:        17,
		Spec:        topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:         fastLag(),
		AutoMigrate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(6 * time.Minute)

	// Blacklist every host the task is not on: no destination remains.
	used := map[int]bool{}
	for _, ct := range task.Containers {
		used[ct.Host] = true
	}
	for h := 0; h < d.Fabric.Hosts(); h++ {
		if !used[h] {
			d.blockedHosts[h] = true
		}
	}

	victim := task.Containers[0]
	badHost := victim.Host
	if _, err := d.CP.MigrateContainer(victim.ID); !errors.Is(err, cluster.ErrNoMigration) {
		t.Fatalf("migration with no spare hosts: err = %v, want ErrNoMigration", err)
	}

	in, err := d.Injector.Inject(faults.PCIeNICError, faults.Target{Host: badHost})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(3 * time.Minute)
	d.Injector.Clear(in)

	if d.Migrations() != 0 {
		t.Fatalf("migrated %d containers with no schedulable destination", d.Migrations())
	}
	if victim.Host != badHost {
		t.Fatalf("container moved to %d despite exhausted spares", victim.Host)
	}
	if len(d.Analyzer.Alarms()) == 0 {
		t.Fatal("no alarms: the fault should still be detected when migration is impossible")
	}
}

// TestMigratedAgentKeepsProbing verifies the migration feedback loop
// end to end on the telemetry side: after an auto-migration the
// container's sidecar agent survives (migration re-homes the same
// container in place), keeps completing rounds, and its probe records
// flow from the NEW host into the log service.
func TestMigratedAgentKeepsProbing(t *testing.T) {
	d, err := New(Options{
		Seed:        17,
		Spec:        topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:         fastLag(),
		AutoMigrate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(6 * time.Minute)

	victim := task.Containers[0]
	badHost := victim.Host
	in, err := d.Injector.Inject(faults.PCIeNICError, faults.Target{Host: badHost})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(2 * time.Minute)
	d.Injector.Clear(in)
	if d.Migrations() == 0 || victim.Host == badHost {
		t.Fatalf("no migration happened (migrations=%d host=%d)", d.Migrations(), victim.Host)
	}
	newHost := victim.Host

	agent, ok := d.agents[victim.ID]
	if !ok {
		t.Fatal("migrated container lost its sidecar agent")
	}
	roundsBefore := agent.Rounds()
	mark := d.Engine.Now()
	d.Run(time.Minute)
	if agent.Rounds() <= roundsBefore {
		t.Fatalf("agent stopped probing after migration (rounds %d → %d)", roundsBefore, agent.Rounds())
	}
	fresh := d.Log.ByTask(string(task.ID), mark)
	fromNewHost := 0
	for _, r := range fresh {
		if r.Src.Host == newHost {
			fromNewHost++
		}
		if r.Src.Host == badHost || r.Dst.Host == badHost {
			t.Fatalf("post-migration record still references old host %d: %+v", badHost, r)
		}
	}
	if fromNewHost == 0 {
		t.Fatalf("no probe records from the migrated container's new host %d (%d fresh records)", newHost, len(fresh))
	}
}

// campaignReport is one telemetry-fault campaign run's outcome.
type campaignReport struct {
	snap   obs.Snapshot
	report metrics.Report
}

// runCampaign plays a fixed multi-hour scenario — three Table-1 faults
// spaced ~40 min apart on a steady task — optionally under heavy
// telemetry-plane weather: ≥20 % batch drop, duplication, reordering,
// delayed analysis rounds, and a sidecar crash/restart storm before
// each fault. Identical seeds and fault schedules keep the two arms
// comparable.
func runCampaign(t *testing.T, telemetryFaults bool) campaignReport {
	t.Helper()
	d, err := New(Options{
		Seed: 29,
		Spec: topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:  fastLag(),
		// Small enough that a run of delayed rounds overflows a shard
		// inbox (≈2.9k records accumulate per 30 s round on the basic
		// list), so shedding is actually exercised.
		InboxLimit: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(10 * time.Minute) // steady state + detector history

	if telemetryFaults {
		d.SetTelemetryFaults(faults.TelemetryOptions{
			DropBatchProb:      0.25,
			DuplicateBatchProb: 0.05,
			ReorderBatchProb:   0.05,
			DelayRoundProb:     0.30,
		})
	}

	inject := func(issue faults.IssueType, tgt faults.Target, hold time.Duration) {
		if telemetryFaults {
			d.AgentRestartStorm(0.5, 2*time.Minute)
		}
		d.Run(5 * time.Minute)
		in, err := d.Injector.Inject(issue, tgt)
		if err != nil {
			t.Fatal(err)
		}
		d.Run(hold)
		d.Injector.Clear(in)
		d.Run(35 * time.Minute) // quiet tail between incidents
	}

	a := task.Containers[0].Addrs[0]
	b := task.Containers[2].Addrs[3]
	inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: a.Rail}, 4*time.Minute)
	inject(faults.RNICPortFlapping, faults.Target{Host: b.Host, Rail: b.Rail}, 4*time.Minute)
	inject(faults.CRCError, faults.Target{
		Link: topology.MakeLinkID(
			topology.NIC{Host: a.Host, Rail: a.Rail}.ID(),
			d.Fabric.ToR(d.Fabric.PodOf(a.Host), a.Rail)),
	}, 4*time.Minute)

	return campaignReport{
		snap:   d.Stats(),
		report: metrics.Score(d.Injector.Injections(), d.Analyzer.Alarms(), 2*time.Minute),
	}
}

// TestTelemetryFaultCampaign is the acceptance scenario: a multi-hour
// simulated run under ≥20 % batch drop plus an agent restart storm
// completes without panic or unbounded memory, the self-monitoring
// stats report the shed/drop the plane absorbed, and precision/recall
// degrade gracefully against the fault-free arm.
func TestTelemetryFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour simulated campaign")
	}
	clean := runCampaign(t, false)
	faulty := runCampaign(t, true)

	// The clean arm detects everything.
	if got := clean.report.Recall(); got != 1 {
		t.Fatalf("clean campaign recall = %v, want 1 (report %+v)", got, clean.report)
	}

	// The faulted arm absorbed real telemetry damage…
	c := faulty.snap.Counters
	for _, key := range []string{"batches-dropped", "records-shed", "rounds-delayed", "agent-crashes", "agent-restarts"} {
		if c[key] == 0 {
			t.Errorf("faulted campaign %s = 0, want > 0", key)
		}
	}
	// …while the clean arm shows none.
	for _, key := range []string{"batches-dropped", "records-shed", "rounds-delayed", "agent-crashes"} {
		if n := clean.snap.Counters[key]; n != 0 {
			t.Errorf("clean campaign %s = %d, want 0", key, n)
		}
	}

	// Graceful degradation envelope: the plane keeps detecting most
	// faults (recall within 50 % of clean) and alarms stay dominated by
	// real incidents.
	if got := faulty.report.Recall(); got < 0.5 {
		t.Errorf("faulted campaign recall = %v, want ≥ 0.5 (report %+v)", got, faulty.report)
	}
	if got := faulty.report.Precision(); got < 0.5 {
		t.Errorf("faulted campaign precision = %v, want ≥ 0.5 (report %+v)", got, faulty.report)
	}

	// Memory stays bounded: the log-store index tracks retained records
	// only, and no shard inbox can exceed its configured cap.
	if keys := c["logstore-index-keys"]; keys > 4096 {
		t.Errorf("log-store index keys = %d, want bounded", keys)
	}
}
