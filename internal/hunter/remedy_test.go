// Acceptance tests for the self-healing remediation plane: a
// multi-fault campaign must be detected, localized AND healed with no
// human in the loop; the healed ledger must be bit-identical across
// analyzer worker counts and a mid-campaign controller crash; healing
// must beat blacklist-only on training goodput; rails must defer (not
// drop) over-budget work; and dry-run must record the same intents
// while executing nothing.
package hunter

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/incident"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/remedy"
	"skeletonhunter/internal/topology"
	"skeletonhunter/internal/trainsim"
)

// healSpec is the campaign fabric: two pods of eight hosts so drains
// always have spare capacity, even when a whole ToR span cordons.
var healSpec = topology.Spec{Pods: 2, HostsPerPod: 8, Rails: 8, AggPerPod: 2, Spines: 2}

// healRemedyConfig is the campaign's remediation tuning: a verify
// window two sweeps long, budget roomy enough for the three planned
// repairs, and a blast cap of half the fabric.
func healRemedyConfig() *remedy.Config {
	return &remedy.Config{
		Window:      10 * time.Minute,
		Budget:      4,
		BlastRadius: 0.5,
		Cooldown:    30 * time.Minute,
		VerifyAfter: 2 * time.Minute,
	}
}

// healFaults injects the three-fault campaign on three distinct
// task hosts and returns the component IDs remediation must heal:
// an RNIC hard-down (drain play), a ToR-side port down on a rail
// link (drain play via the NIC endpoint), and a drifted offload flow
// table (Fig. 18 in-place clear).
func healFaults(t *testing.T, d *Deployment, task *cluster.Task) []component.ID {
	t.Helper()
	a := task.Containers[0].Addrs[0]
	if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: a.Rail}); err != nil {
		t.Fatal(err)
	}
	b := task.Containers[1].Addrs[3]
	nic := topology.NIC{Host: b.Host, Rail: 3}
	link := topology.MakeLinkID(nic.ID(), d.Fabric.ToR(d.Fabric.PodOf(b.Host), 3))
	if _, err := d.Injector.Inject(faults.SwitchPortDown, faults.Target{Link: link}); err != nil {
		t.Fatal(err)
	}
	c := task.Containers[2].Addrs[5]
	if _, err := d.Injector.Inject(faults.OffloadingFailure, faults.Target{Host: c.Host, Rail: c.Rail}); err != nil {
		t.Fatal(err)
	}
	return []component.ID{
		component.RNIC(a.Host, a.Rail),
		component.Link(link),
		component.RNIC(c.Host, c.Rail),
	}
}

// healCampaign runs the full scenario at a given worker count:
// steady state, three faults, a mid-campaign controller crash and
// recovery, then enough quiet time for every repair to verify and
// commit. Returns the deployment, the healed components, and the
// final fingerprint.
func healCampaign(t *testing.T, workers int) (*Deployment, []component.ID, string) {
	t.Helper()
	d, err := New(Options{
		Seed:               47,
		Spec:               healSpec,
		Lag:                fastLag(),
		Workers:            workers,
		CheckpointInterval: 2 * time.Minute,
		Remedy:             healRemedyConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute)
	targets := healFaults(t, d, task)
	d.Run(2 * time.Minute)

	// The controller dies mid-campaign — incidents open, repairs in
	// flight — and recovers from the last periodic checkpoint. Healing
	// must pick up where the ledger left off.
	d.CrashController()
	d.Run(time.Minute)
	if err := d.RecoverFromLast(); err != nil {
		t.Fatal(err)
	}
	d.Run(15 * time.Minute)
	return d, targets, d.Fingerprint()
}

// TestSelfHealingCampaign is the acceptance gate: every injected
// fault is detected, localized, and healed with zero human action.
func TestSelfHealingCampaign(t *testing.T) {
	d, targets, _ := healCampaign(t, 0)

	audit := d.Remedy.Audit()
	if len(audit) == 0 {
		t.Fatal("campaign produced an empty remediation ledger")
	}
	byComp := make(map[component.ID][]remedy.Action)
	for _, a := range audit {
		byComp[a.Component] = append(byComp[a.Component], a)
	}
	for _, comp := range targets {
		inc, ok := d.Incidents.Latest(comp)
		if !ok {
			t.Fatalf("%s: no incident — fault not detected/localized", comp)
		}
		if inc.RepairedAt == 0 || inc.TimeToRepair <= 0 {
			t.Fatalf("%s: not healed: repaired=%v ttr=%v state=%v", comp, inc.RepairedAt, inc.TimeToRepair, inc.State)
		}
		if len(inc.Evidence.Remediation) == 0 {
			t.Fatalf("%s: incident carries no remediation audit trail", comp)
		}
		acts := byComp[comp]
		if len(acts) == 0 {
			t.Fatalf("%s: no remediation action in the ledger", comp)
		}
		committed := false
		for _, a := range acts {
			if a.State == remedy.StateCommitted {
				committed = true
				if a.DryRun {
					t.Fatalf("%s: committed action marked dry-run", comp)
				}
			}
		}
		if !committed {
			t.Fatalf("%s: no committed action among %+v", comp, acts)
		}
	}

	// The plays must match the policy table: the hard-down RNIC and the
	// NIC-endpoint link drain their hosts; the drifted offload table
	// repairs in place.
	wantKinds := []remedy.ActionKind{remedy.KindDrainHost, remedy.KindDrainHost, remedy.KindClearOffload}
	for i, comp := range targets {
		found := false
		for _, a := range byComp[comp] {
			if a.Kind == wantKinds[i] && a.State == remedy.StateCommitted {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: no committed %s action: %+v", comp, wantKinds[i], byComp[comp])
		}
	}

	// The healed hosts are cordoned out of placement; the offload
	// repair left its host alone.
	if len(d.CP.CordonedHosts()) == 0 {
		t.Fatal("no host cordoned by the drain plays")
	}

	snap := d.Stats()
	if snap.Counters["incidents-repaired"] < 3 {
		t.Fatalf("incidents-repaired = %d, want >= 3", snap.Counters["incidents-repaired"])
	}
	if snap.Counters["remedy-actions-committed"] < 3 {
		t.Fatalf("remedy-actions-committed = %d, want >= 3", snap.Counters["remedy-actions-committed"])
	}
}

// TestSelfHealingDeterminism pins the healed ledger across analyzer
// worker counts: the same campaign — crash, recovery, repairs and all
// — must fingerprint bit-identically at 1, 4 and 16 workers.
func TestSelfHealingDeterminism(t *testing.T) {
	_, _, want := healCampaign(t, 1)
	for _, workers := range []int{4, 16} {
		if _, _, got := healCampaign(t, workers); got != want {
			t.Fatalf("workers=%d: healed fingerprint diverged from serial run", workers)
		}
	}
}

// goodputArm measures training progress through the fault campaign
// with a job-restart loop: a failed job restarts after a backoff, the
// way a production scheduler would resubmit. With remediation on, the
// restart lands on healed capacity and sticks; blacklist-only leaves
// the containers on the broken host, so every restart dies again.
func goodputArm(t *testing.T, withRemedy bool) int {
	t.Helper()
	opts := Options{
		Seed: 47,
		Spec: healSpec,
		Lag:  fastLag(),
	}
	if withRemedy {
		opts.Remedy = healRemedyConfig()
	}
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute)

	// One hard-down RNIC under container 0: pairs through it go
	// unreachable, the collective times out, the job dies.
	a := task.Containers[0].Addrs[0]
	if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: a.Rail}); err != nil {
		t.Fatal(err)
	}

	total := 0
	var job *trainsim.Job
	job, err = trainsim.Start(d.Engine, d.Net, task, trainsim.Config{IterBase: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// 30-minute horizon in 30-second segments: harvest failed jobs and
	// restart them on the next segment boundary (the scheduler's
	// resubmit backoff).
	for seg := 0; seg < 60; seg++ {
		d.Run(30 * time.Second)
		if job != nil && job.Failed {
			total += job.Iterations
			job.Stop()
			job = nil
			continue
		}
		if job == nil {
			if j, err := trainsim.Start(d.Engine, d.Net, task, trainsim.Config{IterBase: 10 * time.Second}); err == nil {
				job = j
			}
		}
	}
	if job != nil {
		total += job.Iterations
		job.Stop()
	}
	return total
}

// TestHealedGoodputBeatsBlacklistOnly is the paper-scale payoff
// claim: closing the loop (detect → localize → repair) yields
// strictly more training iterations than detect → blacklist alone.
func TestHealedGoodputBeatsBlacklistOnly(t *testing.T) {
	healed := goodputArm(t, true)
	blacklistOnly := goodputArm(t, false)
	if healed <= blacklistOnly {
		t.Fatalf("healed goodput %d iterations <= blacklist-only %d", healed, blacklistOnly)
	}
	t.Logf("goodput: healed=%d blacklist-only=%d iterations", healed, blacklistOnly)
}

// TestRemedyBudgetDefersEndToEnd squeezes the campaign through a
// budget of one action per window: the overflow repairs defer — with
// the counter and audit trail to prove it — and still land in later
// windows. Deferral must never become drop.
func TestRemedyBudgetDefersEndToEnd(t *testing.T) {
	d, err := New(Options{
		Seed: 47,
		Spec: healSpec,
		Lag:  fastLag(),
		Remedy: &remedy.Config{
			Window:      5 * time.Minute,
			Budget:      1,
			BlastRadius: 0.5,
			Cooldown:    30 * time.Minute,
			VerifyAfter: 2 * time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute)
	targets := healFaults(t, d, task)
	d.Run(25 * time.Minute)

	snap := d.Stats()
	if snap.Counters["remedy-actions-deferred"] == 0 {
		t.Fatal("budget of 1 never deferred anything across 3 concurrent repairs")
	}
	for _, comp := range targets {
		inc, ok := d.Incidents.Latest(comp)
		if !ok || inc.RepairedAt == 0 {
			t.Fatalf("%s: deferred repair never landed (defer became drop)", comp)
		}
	}
	// The audit shows at least one action that waited for a later
	// window: executed in a different budget window than planned.
	waited := false
	for _, a := range d.Remedy.Audit() {
		if a.Deferrals > 0 && a.State == remedy.StateCommitted {
			waited = true
		}
	}
	if !waited {
		t.Fatal("no committed action records a deferral")
	}
}

// TestRemedyDryRunExecutesNothing runs the campaign in dry-run mode:
// the ledger records the same intents the real run commits, but no
// cordon, migration, restart or offload write ever happens, and no
// incident is marked repaired.
func TestRemedyDryRunExecutesNothing(t *testing.T) {
	realIntents := make(map[component.ID]string)
	{
		d, targets, _ := healCampaign(t, 0)
		for _, a := range d.Remedy.Audit() {
			for _, comp := range targets {
				if a.Component == comp && a.State == remedy.StateCommitted {
					realIntents[comp] = a.Intent()
				}
			}
		}
		if len(realIntents) != 3 {
			t.Fatalf("real campaign committed %d target repairs, want 3", len(realIntents))
		}
	}

	cfg := healRemedyConfig()
	cfg.DryRun = true
	d, err := New(Options{
		Seed:               47,
		Spec:               healSpec,
		Lag:                fastLag(),
		CheckpointInterval: 2 * time.Minute,
		Remedy:             cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute)
	targets := healFaults(t, d, task)
	d.Run(18 * time.Minute)

	// Identical intents for the target components, nothing executed.
	dryIntents := make(map[component.ID]string)
	for _, a := range d.Remedy.Audit() {
		if !a.DryRun {
			t.Fatalf("dry-run ledger contains a live action: %+v", a)
		}
		for _, comp := range targets {
			if a.Component == comp && dryIntents[comp] == "" {
				dryIntents[comp] = a.Intent()
			}
		}
	}
	for comp, want := range realIntents {
		if got := dryIntents[comp]; got != want {
			t.Fatalf("%s: dry-run intent %q, real intent %q", comp, got, want)
		}
	}

	if got := d.CP.CordonedHosts(); len(got) != 0 {
		t.Fatalf("dry run cordoned hosts %v", got)
	}
	if d.Migrations() != 0 {
		t.Fatalf("dry run migrated %d containers", d.Migrations())
	}
	for _, c := range task.Containers {
		if c.State != cluster.Running {
			t.Fatalf("dry run disturbed container %s: %v", c.ID, c.State)
		}
	}
	snap := d.Stats()
	if snap.Counters["remedy-dry-run-intents"] == 0 {
		t.Fatal("dry-run intents counter never moved")
	}
	if snap.Counters["remedy-actions-executed"] != 0 {
		t.Fatalf("dry run executed %d actions", snap.Counters["remedy-actions-executed"])
	}
	if snap.Counters["incidents-repaired"] != 0 {
		t.Fatal("dry run marked incidents repaired")
	}
	for _, comp := range targets {
		if inc, ok := d.Incidents.Latest(comp); ok && inc.RepairedAt != 0 {
			t.Fatalf("%s: dry run stamped RepairedAt", comp)
		}
	}
	// The intents surface in the incident evidence for operators.
	found := false
	for _, comp := range targets {
		if inc, ok := d.Incidents.Latest(comp); ok {
			for _, note := range inc.Evidence.Remediation {
				if strings.Contains(note, "dry-run intent") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no dry-run intent note in any target incident's evidence")
	}
}

// TestRemedyAuditServedByAPI closes satellite 1: the repair clocks
// and the remediation audit trail render in /v1/incidents.
func TestRemedyAuditServedByAPI(t *testing.T) {
	d, err := New(Options{
		Seed:     47,
		Spec:     healSpec,
		Lag:      fastLag(),
		Remedy:   healRemedyConfig(),
		HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.API.Close()
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute)
	a := task.Containers[0].Addrs[0]
	if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: a.Rail}); err != nil {
		t.Fatal(err)
	}
	d.Run(12 * time.Minute)

	comp := component.RNIC(a.Host, a.Rail)
	inc, ok := d.Incidents.Latest(comp)
	if !ok || inc.RepairedAt == 0 {
		t.Fatalf("fault not healed: %+v", inc)
	}
	body := httpGetBody(t, "http://"+d.API.Addr()+"/v1/incidents")
	for _, want := range []string{
		`"time_to_repair_s"`,
		`"repaired_s"`,
		`"remediation"`,
		fmt.Sprintf("remedy#%d", remedyIDFor(d, comp)),
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/v1/incidents missing %s:\n%s", want, body)
		}
	}
}

// httpGetBody fetches a URL and returns its body, failing the test on
// any transport or status error.
func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b)
}

// remedyIDFor returns the ledger ID of the first action planned for a
// component.
func remedyIDFor(d *Deployment, comp component.ID) int {
	for _, a := range d.Remedy.Audit() {
		if a.Component == comp {
			return a.ID
		}
	}
	return -1
}

// TestMigrationExhaustionSurfaces pins satellite 2: when
// auto-migration finds no schedulable spare, the condition lands in
// the obs counters and the incident's evidence instead of vanishing.
func TestMigrationExhaustionSurfaces(t *testing.T) {
	d, err := New(Options{
		Seed:        31,
		Spec:        topology.Spec{Pods: 1, HostsPerPod: 4, Rails: 8, AggPerPod: 2},
		Lag:         fastLag(),
		AutoMigrate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fill every host: TP8 PP2 DP2 = 4 containers on 4 hosts — no
	// spare anywhere.
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute)
	a := task.Containers[0].Addrs[0]
	if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: a.Rail}); err != nil {
		t.Fatal(err)
	}
	d.Run(3 * time.Minute)

	snap := d.Stats()
	if snap.Counters["migrations-exhausted"] == 0 {
		t.Fatal("exhausted migration not counted")
	}
	inc, ok := d.Incidents.Latest(component.RNIC(a.Host, a.Rail))
	if !ok {
		t.Fatal("no incident for the faulted RNIC")
	}
	found := false
	for _, note := range inc.Evidence.Remediation {
		if strings.Contains(note, "auto-migration exhausted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no exhaustion note in evidence: %v", inc.Evidence.Remediation)
	}
	if inc.State == incident.Resolved {
		t.Fatal("stranded incident resolved itself")
	}
}
