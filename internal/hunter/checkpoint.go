// Control-plane crash recovery for the deployment (ISSUE: the paper's
// always-on monitoring service must survive its own controller
// restarting without erasing probing state or blinding the localizer).
//
// The durable state is deliberately small: the controller registry
// snapshot (tasks, leases, phases, skeletons), the analyzer's alarms
// and blacklist, the operations ledgers (blocked hosts, migration
// count), task secrets, and installed skeleton inferences. Everything
// else is rebuilt deterministically on recovery:
//
//   - task membership and container departure counts resynchronize
//     from the cluster control plane (the paper's §6 controller reads
//     the task database on startup);
//   - the detector's per-pair windows are rebuilt by replaying the
//     retained probe records from the logstore — the log service is
//     the durable telemetry store, so the analyzer's streaming state
//     is a pure function of it.
//
// Because both rebuilds are deterministic functions of checkpoint +
// logstore contents, two recoveries from the same checkpoint produce
// bit-identical alarms and blacklists (the Fingerprint test pins
// this).
package hunter

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"skeletonhunter/internal/analyzer"
	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/controller"
	"skeletonhunter/internal/correlate"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/incident"
	"skeletonhunter/internal/obs"
	"skeletonhunter/internal/probe"
	"skeletonhunter/internal/remedy"
	"skeletonhunter/internal/skeleton"
)

// CheckpointVersion is the deployment checkpoint format version.
// Version 2 added the incident plane's state: incident records are
// operator-durable artifacts, so they ride the checkpoint verbatim
// rather than being rebuilt by replay. Version 3 added the
// remediation plane: the audit ledger, deferred queue, cooldowns and
// budget window ride along so healing survives a controller crash —
// in-flight verifies resume because their deadlines are data the next
// tick scans, not timers the dead process held. Version 4 added the
// gray-failure correlator: CUSUM calibrations, the dedup bloom filter
// (cells and RNG cursor), alarm ledger, and lead-lag windows restore
// exactly — a replayed record the correlator already observed is
// skipped by high-water mark, so restore+replay equals never-crashed.
const CheckpointVersion = 4

// Checkpoint is a durable image of the monitoring system's control
// plane at one instant.
type Checkpoint struct {
	Version int
	At      time.Duration

	Controller controller.Snapshot
	Analyzer   analyzer.Snapshot
	Incidents  incident.Snapshot
	Remedy     remedy.Snapshot
	Correlate  correlate.Snapshot

	BlockedHosts []int
	Migrations   int
	Secrets      map[cluster.TaskID]string
	Inferences   map[cluster.TaskID]skeleton.Inference
}

// Checkpoint captures the control-plane state and remembers it as the
// latest recovery point. Returns nil without touching the recovery
// point while the controller is down — a dead process writes no
// checkpoints, and clobbering the last good one with amnesia would
// defeat the recovery.
func (d *Deployment) Checkpoint() *Checkpoint {
	if d.Controller.Down() {
		return nil
	}
	ck := &Checkpoint{
		Version:      CheckpointVersion,
		At:           d.Engine.Now(),
		Controller:   d.Controller.Snapshot(),
		Analyzer:     d.Analyzer.SnapshotState(),
		Incidents:    incident.Snapshot{Version: incident.SnapshotVersion},
		Remedy:       remedy.Snapshot{Version: remedy.SnapshotVersion},
		Correlate:    correlate.Snapshot{Version: correlate.SnapshotVersion},
		BlockedHosts: d.BlockedHosts(),
		Migrations:   d.migrations,
		Secrets:      copyTaskMap(d.secrets),
		Inferences:   copyTaskMap(d.inferences),
	}
	if d.Incidents != nil {
		ck.Incidents = d.Incidents.Snapshot()
	}
	if d.Remedy != nil {
		ck.Remedy = d.Remedy.Snapshot()
	}
	if d.Correlate != nil {
		ck.Correlate = d.Correlate.Snapshot()
	}
	d.lastCkpt = ck
	d.Obs.Inc(obs.CheckpointsTaken)
	return ck
}

// LastCheckpoint returns the most recent checkpoint (nil before the
// first one).
func (d *Deployment) LastCheckpoint() *Checkpoint { return d.lastCkpt }

// CrashController models the monitoring control plane dying: the
// controller registry, the analyzer's streaming state, alarms and
// blacklist, and the deployment's own ledgers all vanish. Sidecar
// agents and the logstore are unaffected (they are separate processes
// in the paper's deployment); agents simply get empty ping lists until
// recovery.
func (d *Deployment) CrashController() {
	d.Controller.Crash()
	d.Analyzer.Crash()
	if d.Incidents != nil {
		d.Incidents.Crash()
	}
	if d.Remedy != nil {
		d.Remedy.Crash()
	}
	if d.Correlate != nil {
		d.Correlate.Crash()
	}
	d.blockedHosts = make(map[int]bool)
	d.migrations = 0
	d.stopped = make(map[cluster.TaskID]int)
	d.inferences = make(map[cluster.TaskID]skeleton.Inference)
	d.secrets = make(map[cluster.TaskID]string)
	d.Obs.Inc(obs.ControllerCrashes)
	d.refreshAPI()
}

// RecoverFrom restarts the control plane from a checkpoint: the
// controller comes back under a new epoch serving the snapshotted
// registry as stale leases, the analyzer gets its alarms and blacklist
// back, ledgers are restored, task membership and departure counts
// resync against the cluster control plane, and the detector state is
// rebuilt by replaying the logstore's retained records since the
// checkpoint.
func (d *Deployment) RecoverFrom(ck *Checkpoint) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("hunter: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	resolve := func(id cluster.TaskID) (*cluster.Task, bool) {
		t, ok := d.CP.Task(id)
		return t, ok
	}
	if _, err := d.Controller.Restore(ck.Controller, resolve); err != nil {
		return err
	}
	d.Analyzer.RestoreState(ck.Analyzer)
	if d.Incidents != nil {
		if err := d.Incidents.Restore(ck.Incidents); err != nil {
			return err
		}
	}
	if d.Remedy != nil {
		if err := d.Remedy.Restore(ck.Remedy); err != nil {
			return err
		}
	}
	if d.Correlate != nil {
		// Restore before the logstore replay below: restored shards carry
		// a high-water mark that makes replayed records the correlator
		// already folded idempotent.
		if err := d.Correlate.Restore(ck.Correlate); err != nil {
			return err
		}
	}

	d.blockedHosts = make(map[int]bool, len(ck.BlockedHosts))
	for _, h := range ck.BlockedHosts {
		d.blockedHosts[h] = true
	}
	d.migrations = ck.Migrations
	d.secrets = copyTaskMap(ck.Secrets)
	d.inferences = copyTaskMap(ck.Inferences)

	// Resync against the cluster control plane (the task database):
	// tasks submitted after the checkpoint — or during the outage —
	// are preloaded now, and departure counts are recomputed from
	// container states because stop events during the outage were
	// lost. Tasks() enumerates in submission order, so this pass is
	// deterministic.
	d.stopped = make(map[cluster.TaskID]int)
	for _, t := range d.CP.Tasks() {
		gone := 0
		for _, c := range t.Containers {
			if c.State == cluster.Terminated {
				gone++
			}
		}
		if gone == len(t.Containers) {
			// Everything departed while we were away: tear down rather
			// than resurrect.
			d.Analyzer.ForgetTask(string(t.ID))
			d.Controller.RemoveTask(t.ID)
			continue
		}
		d.Controller.AddTask(t) // no-op for restored tasks
		if gone > 0 {
			d.stopped[t.ID] = gone
		}
	}

	// Rebuild detector state: replay every retained probe record newer
	// than the checkpoint through the fresh shards, task by task in
	// sorted ID order. Alarms those records already raised before the
	// crash are in the restored alarm list; re-detections they cause
	// post-restore land as new alarms, which the scoring grace window
	// absorbs.
	for _, id := range d.Controller.TaskIDs() {
		recs := d.Log.ByTask(string(id), ck.At)
		if len(recs) > 0 {
			d.Analyzer.IngestBatch(probe.Batch(recs))
		}
	}
	d.Obs.Inc(obs.ControllerRestores)
	d.refreshAPI()
	return nil
}

// RecoverFromLast recovers from the most recent checkpoint; with none
// taken yet, it cold-starts: an empty registry under a bumped epoch,
// resynced from the cluster control plane, with the full retained log
// replayed.
func (d *Deployment) RecoverFromLast() error {
	ck := d.lastCkpt
	if ck == nil {
		ck = &Checkpoint{
			Version: CheckpointVersion,
			Controller: controller.Snapshot{
				Version: controller.SnapshotVersion,
				Epoch:   d.Controller.Epoch(),
			},
			Incidents: incident.Snapshot{Version: incident.SnapshotVersion},
			Remedy:    remedy.Snapshot{Version: remedy.SnapshotVersion},
			Correlate: correlate.Snapshot{Version: correlate.SnapshotVersion},
		}
	}
	return d.RecoverFrom(ck)
}

// ScheduleControllerCrash injects a controller crash at `at` (absolute
// sim time) with recovery from the last checkpoint `downtime` later.
// The returned record reports what fired.
func (d *Deployment) ScheduleControllerCrash(at, downtime time.Duration) *faults.ControllerCrash {
	return faults.ScheduleControllerCrash(d.Engine, at, downtime,
		func(time.Duration) { d.CrashController() },
		func(time.Duration) {
			if err := d.RecoverFromLast(); err != nil {
				// The only failure is a version mismatch on a checkpoint
				// this same process wrote — a programming error.
				panic(err)
			}
		})
}

// Fingerprint digests the analyzer's alarms and blacklist — and the
// incident ledger derived from them — into a stable hash: the
// determinism probe, equal histories hash equal.
func (d *Deployment) Fingerprint() string {
	h := sha256.New()
	for _, al := range d.Analyzer.Alarms() {
		fmt.Fprintf(h, "alarm %d\n", al.At)
		for _, a := range al.Anomalies {
			fmt.Fprintf(h, " a %+v\n", a)
		}
		for _, v := range al.Verdicts {
			fmt.Fprintf(h, " v %+v\n", v)
		}
	}
	bl := d.Analyzer.Blacklist()
	ids := make([]component.ID, 0, len(bl))
	for id := range bl {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(h, "bl %s %d\n", id, bl[id])
	}
	if d.Incidents != nil {
		fmt.Fprintf(h, "inc %s\n", d.Incidents.Fingerprint())
	}
	if d.Remedy != nil {
		fmt.Fprintf(h, "rem %s\n", d.Remedy.Fingerprint())
	}
	if d.Correlate != nil {
		fmt.Fprintf(h, "cor %s\n", d.Correlate.Fingerprint())
	}
	return hex.EncodeToString(h.Sum(nil))
}

func copyTaskMap[V any](m map[cluster.TaskID]V) map[cluster.TaskID]V {
	out := make(map[cluster.TaskID]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
