package hunter

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"skeletonhunter/internal/apiserver"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/incident"
	"skeletonhunter/internal/topology"
)

// breakRail3 injects the standard campaign fault: the ToR-side port of
// container 0's rail-3 link.
func breakRail3(t *testing.T, d *Deployment) *faults.Injection {
	t.Helper()
	nic := topology.NIC{Host: 0, Rail: 3}
	link := topology.MakeLinkID(nic.ID(), d.Fabric.ToR(0, 3))
	in, err := d.Injector.Inject(faults.SwitchPortDown, faults.Target{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestIncidentLifecycleEndToEnd is the acceptance path: a fault
// campaign raises an incident whose evidence cites real retained probe
// records with the correct component class, the incident rides the
// automatic blacklist mitigation to resolved, and the query API serves
// it to a crowd of revalidating clients.
func TestIncidentLifecycleEndToEnd(t *testing.T) {
	d, err := New(Options{
		Seed:     11,
		Spec:     topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:      fastLag(),
		HTTPAddr: "127.0.0.1:0",
		// Every test client shares the loopback source IP, so the
		// per-client budget must absorb the whole crowd.
		API: apiserver.Config{RatePerSec: 100000, Burst: 100000},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.API.Close()
	steadyTask(t, d)
	d.Run(5 * time.Minute)

	in := breakRail3(t, d)
	d.Run(3 * time.Minute)

	incs := d.Incidents.Incidents()
	if len(incs) == 0 {
		t.Fatal("campaign raised no incidents")
	}
	var linkInc *incident.Incident
	for i := range incs {
		if _, ok := component.LinkOf(incs[i].Component); ok {
			linkInc = &incs[i]
			break
		}
	}
	if linkInc == nil {
		t.Fatalf("no link-component incident among %+v", incs)
	}
	if linkInc.Class != component.ClassInterHostNetwork || linkInc.Severity != incident.SevCritical {
		t.Fatalf("link incident class/severity: %v/%v", linkInc.Class, linkInc.Severity)
	}
	if linkInc.State != incident.Mitigating || !strings.Contains(linkInc.Mitigation, "blacklist") {
		t.Fatalf("auto-mitigation missing: state=%v mitigation=%q", linkInc.State, linkInc.Mitigation)
	}
	if linkInc.TimeToDetect <= 0 || linkInc.TimeToMitigate < 0 {
		t.Fatalf("SLO clocks: ttd=%v ttm=%v", linkInc.TimeToDetect, linkInc.TimeToMitigate)
	}

	// The evidence must cite real retained records: every cited record
	// must still be present in the log store's per-task index.
	ev := linkInc.Evidence
	if ev.TotalRecords == 0 || len(ev.Records) == 0 {
		t.Fatal("evidence bundle is empty")
	}
	if len(ev.Verdicts) == 0 {
		t.Fatal("evidence carries no localization verdicts")
	}
	retained := d.Log.ByTask(string(ev.Records[0].Task), 0)
	for _, cited := range ev.Records {
		found := false
		for _, r := range retained {
			if identOf(r) == identOf(cited) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("evidence cites a record absent from the log store: %+v", cited)
		}
	}
	// A switch-port-down link incident should carry queue context for
	// its switch endpoints.
	if len(ev.Queues) == 0 {
		t.Fatal("link incident has no queue samples")
	}

	// Serve the incident under concurrent load with revalidation.
	base := "http://" + d.API.Addr()
	resp, err := http.Get(base + "/v1/incidents/" + linkInc.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detail status %d", resp.StatusCode)
	}
	var detail struct {
		Incident struct {
			ID       string `json:"id"`
			Class    string `json:"class"`
			Evidence struct {
				TotalRecords int `json:"total_records"`
			} `json:"evidence"`
		} `json:"incident"`
	}
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatalf("detail JSON: %v", err)
	}
	if detail.Incident.ID != linkInc.ID || detail.Incident.Class != component.ClassInterHostNetwork.String() {
		t.Fatalf("served detail %+v", detail.Incident)
	}
	if detail.Incident.Evidence.TotalRecords != ev.TotalRecords {
		t.Fatalf("served evidence count %d, want %d", detail.Incident.Evidence.TotalRecords, ev.TotalRecords)
	}

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodGet, base+"/v1/incidents", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("list status %d", resp.StatusCode)
				return
			}
			if !strings.Contains(string(b), `"id": "`) {
				errs <- fmt.Errorf("list body missing incidents: %s", b)
				return
			}
			// Immediate revalidation must be a 304: the view only
			// changes with simulation state, and the simulation is
			// paused while we hammer it.
			req, _ = http.NewRequest(http.MethodGet, base+"/v1/incidents", nil)
			req.Header.Set("If-None-Match", resp.Header.Get("ETag"))
			resp2, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp2.Body)
			resp2.Body.Close()
			if resp2.StatusCode != http.StatusNotModified {
				errs <- fmt.Errorf("revalidation status %d", resp2.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Repair and wait out the quiet window: mitigating → resolved.
	d.Injector.Clear(in)
	d.Run(7 * time.Minute)
	got, ok := d.Incidents.Incident(linkInc.ID)
	if !ok || got.State != incident.Resolved || got.ResolvedAt == 0 {
		t.Fatalf("incident did not resolve: %+v", got)
	}

	snap := d.Stats()
	if snap.Counters["incidents-opened"] == 0 || snap.Counters["incidents-resolved"] == 0 {
		t.Fatalf("lifecycle counters missing: %v", snap.Counters)
	}
	if snap.Counters["api-requests"] < clients {
		t.Fatalf("api-requests = %d", snap.Counters["api-requests"])
	}
}

// incidentCrashCampaign drives one deterministic campaign: fault,
// incident, checkpoint mid-incident, crash, recovery, quiet-window
// resolution. Returns the final deployment fingerprint.
func incidentCrashCampaign(t *testing.T) (*Deployment, string) {
	t.Helper()
	d, err := New(Options{
		Seed:               29,
		Spec:               topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:                fastLag(),
		CheckpointInterval: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	steadyTask(t, d)
	d.Run(5 * time.Minute)
	in := breakRail3(t, d)
	d.Run(3 * time.Minute)
	d.Injector.Clear(in)

	// Crash while the incident is live, past a periodic checkpoint.
	d.Run(time.Minute)
	d.CrashController()
	d.Run(time.Minute)
	if err := d.RecoverFromLast(); err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute)
	return d, d.Fingerprint()
}

// TestIncidentSurvivesControllerCrash pins the tentpole's durability
// claim: incident state rides the checkpoint across a controller
// crash, and the whole campaign reruns to an identical fingerprint.
func TestIncidentSurvivesControllerCrash(t *testing.T) {
	d, err := New(Options{
		Seed:               29,
		Spec:               topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:                fastLag(),
		CheckpointInterval: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	steadyTask(t, d)
	d.Run(5 * time.Minute)
	in := breakRail3(t, d)
	d.Run(3 * time.Minute)
	d.Injector.Clear(in)
	d.Run(time.Minute) // periodic checkpoint fires in here

	before := d.Incidents.Incidents()
	if len(before) == 0 {
		t.Fatal("no incident before crash")
	}
	fp := d.Fingerprint()

	d.CrashController()
	if got := len(d.Incidents.Incidents()); got != 0 {
		t.Fatalf("crash left %d incidents behind", got)
	}
	if d.Fingerprint() == fp {
		t.Fatal("fingerprint unchanged by crash — incidents not folded in")
	}

	d.Run(time.Minute)
	if err := d.RecoverFromLast(); err != nil {
		t.Fatal(err)
	}
	after := d.Incidents.Incidents()
	if len(after) != len(before) {
		t.Fatalf("recovery: %d incidents, want %d", len(after), len(before))
	}
	for i := range before {
		if after[i].ID != before[i].ID || after[i].Component != before[i].Component ||
			after[i].State != before[i].State || after[i].AlarmCount != before[i].AlarmCount {
			t.Fatalf("incident changed across recovery:\n  before %+v\n  after  %+v", before[i], after[i])
		}
	}
	if got := d.Fingerprint(); got != fp {
		t.Fatalf("fingerprint changed across crash+recovery:\n  before %s\n  after  %s", fp, got)
	}

	// The same campaign — crash, recovery, resolution and all — reruns
	// to a bit-identical fingerprint.
	d.Run(7 * time.Minute)
	final := d.Fingerprint()
	if _, rerun := incidentCrashCampaign(t); rerun != final {
		t.Fatalf("rerun fingerprint diverged:\n  first %s\n  rerun %s", final, rerun)
	}
}
