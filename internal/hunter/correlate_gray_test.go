package hunter

import (
	"strings"
	"testing"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/correlate"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/incident"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/topology"
)

// newGrayDeployment builds a deployment with the second detection
// layer armed. The correlate warmup is shortened so CUSUM baselines
// freeze within the test's steady-state window.
func newGrayDeployment(t *testing.T, workers int) *Deployment {
	t.Helper()
	d, err := New(Options{
		Seed:      23,
		Spec:      topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:       fastLag(),
		Workers:   workers,
		Correlate: &correlate.Config{Warmup: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runGrayCampaign plays a fixed fault scenario with correlate enabled:
// steady state past the CUSUM warmup, a dead RNIC port (sustained
// droop — the dedup storm case) plus a flapping port on a second
// task, optionally a controller crash/recover in the middle, and a
// final settle. Returns the deployment fingerprint, which now folds in
// the correlate engine's complete state ("cor" line).
func runGrayCampaign(t *testing.T, workers int, crash bool) (string, *Deployment) {
	t.Helper()
	d := newGrayDeployment(t, workers)
	t1, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute)

	a := t1.Containers[0].Addrs[0]
	if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: a.Rail}); err != nil {
		t.Fatal(err)
	}
	b := t2.Containers[1].Addrs[2]
	if _, err := d.Injector.Inject(faults.RNICPortFlapping, faults.Target{Host: b.Host, Rail: b.Rail}); err != nil {
		t.Fatal(err)
	}
	d.Run(2 * time.Minute)

	if crash {
		if d.Checkpoint() == nil {
			t.Fatal("checkpoint refused mid-campaign")
		}
		d.CrashController()
		d.Run(30 * time.Second)
		if err := d.RecoverFromLast(); err != nil {
			t.Fatal(err)
		}
	}

	d.Run(2 * time.Minute)
	d.Analyzer.Flush(d.Engine.Now())
	return d.Fingerprint(), d
}

// TestCorrelateWorkerCountDeterminism pins the tentpole's concurrency
// contract: with the second layer running per-shard inside the round
// fan-out, the worker pool size must not change a single change-point,
// alarm, suppression count, or chain — the deployment fingerprint
// (which digests the full correlate state) is bit-identical.
func TestCorrelateWorkerCountDeterminism(t *testing.T) {
	want, d := runGrayCampaign(t, 1, false)
	alarms, suppressed, _ := d.Correlate.Counts()
	if alarms == 0 {
		t.Fatal("campaign raised no correlate alarms; determinism test has no teeth")
	}
	if suppressed == 0 {
		t.Fatal("sustained faults produced no suppressions; dedup untested")
	}
	for _, workers := range []int{4, 16} {
		got, _ := runGrayCampaign(t, workers, false)
		if got != want {
			t.Fatalf("workers=%d diverged from serial run with correlate enabled", workers)
		}
	}
}

// TestCorrelateCrashRecoveryDeterminism adds a mid-campaign controller
// crash and recovery: CUSUM calibrations, bloom cells, the dedup RNG
// position, and lag histograms restore exactly, so the post-recovery
// trajectory is still identical across worker counts.
func TestCorrelateCrashRecoveryDeterminism(t *testing.T) {
	want, d := runGrayCampaign(t, 1, true)
	if alarms, _, _ := d.Correlate.Counts(); alarms == 0 {
		t.Fatal("crashed campaign raised no correlate alarms")
	}
	for _, workers := range []int{4, 16} {
		got, _ := runGrayCampaign(t, workers, true)
		if got != want {
			t.Fatalf("workers=%d diverged across crash/recover with correlate enabled", workers)
		}
	}
}

// TestCorrelateCheckpointRestoreExact is the v4 checkpoint contract:
// crash the controller and recover from the last checkpoint while the
// correlate layer is mid-storm, and the restored engine state matches
// the pre-crash state bit for bit.
func TestCorrelateCheckpointRestoreExact(t *testing.T) {
	d := newGrayDeployment(t, 0)
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(7 * time.Minute)
	a := task.Containers[0].Addrs[0]
	if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: a.Rail}); err != nil {
		t.Fatal(err)
	}
	d.Run(2 * time.Minute)
	if alarms, _, _ := d.Correlate.Counts(); alarms == 0 {
		t.Fatal("no correlate alarms before the crash; restore test has no teeth")
	}

	corFP := d.Correlate.Fingerprint()
	fp := d.Fingerprint()
	ck := d.Checkpoint()
	if ck == nil || ck.Version != CheckpointVersion {
		t.Fatalf("checkpoint = %+v", ck)
	}
	if ck.Correlate.Version != correlate.SnapshotVersion {
		t.Fatalf("checkpoint carries correlate snapshot v%d", ck.Correlate.Version)
	}

	d.CrashController()
	if got := d.Correlate.SeriesCount(); got != 0 {
		t.Fatalf("crash left %d correlate series behind", got)
	}
	d.Run(30 * time.Second) // agents idle against the dead controller
	if err := d.RecoverFromLast(); err != nil {
		t.Fatal(err)
	}
	if got := d.Correlate.Fingerprint(); got != corFP {
		t.Fatal("correlate state differs after checkpoint restore")
	}
	if got := d.Fingerprint(); got != fp {
		t.Fatal("deployment fingerprint changed across recovery with correlate enabled")
	}

	// The plane keeps working after recovery: more storm rounds fold
	// into the restored alarms instead of minting duplicates.
	before, _, _ := d.Correlate.Counts()
	d.Run(2 * time.Minute)
	after, suppressed, _ := d.Correlate.Counts()
	if after < before {
		t.Fatalf("alarm ledger shrank after recovery: %d -> %d", before, after)
	}
	if suppressed == 0 {
		t.Fatal("post-recovery storm produced no suppressions")
	}
}

// TestGrayCampaignSurfacesInStatsAndIncidents checks the observability
// satellite end to end: the new counters show up in Deployment.Stats,
// and correlate alarms reach the incident plane as a distinct source.
func TestGrayCampaignSurfacesInStatsAndIncidents(t *testing.T) {
	_, d := runGrayCampaign(t, 0, false)
	snap := d.Stats()
	if snap.Counters["changepoints-raised"] == 0 {
		t.Fatal("changepoints-raised counter never moved")
	}
	if snap.Counters["alarms-deduped"] == 0 {
		t.Fatal("alarms-deduped counter never moved")
	}
	if snap.Counters["correlate-alarms"] == 0 || snap.Counters["correlate-series"] == 0 {
		t.Fatalf("correlate gauges missing from stats: %v", snap.Counters)
	}
	if _, ok := snap.Histograms["stage-correlate-ms"]; !ok {
		t.Fatal("stage-correlate-ms histogram missing")
	}

	// Every incident fed by the gray source carries the correlate
	// verdict line; gray-opened ones are capped at SevMedium and pinned
	// to the page-with-evidence policy.
	sawVerdict := false
	for _, inc := range d.Incidents.Incidents() {
		for _, v := range inc.Evidence.Verdicts {
			if strings.Contains(v, "[correlate]") {
				sawVerdict = true
			}
		}
		if inc.Gray {
			if inc.Severity > incident.SevMedium && inc.Reopens == 0 {
				t.Fatalf("gray incident %s at severity %v", inc.ID, inc.Severity)
			}
			if len(inc.Evidence.Remediation) == 0 ||
				!strings.Contains(inc.Evidence.Remediation[0], "no automatic remediation") {
				t.Fatalf("gray incident %s lacks the policy note: %v", inc.ID, inc.Evidence.Remediation)
			}
		}
	}
	if !sawVerdict {
		t.Fatal("no incident carries a correlate verdict")
	}
}
