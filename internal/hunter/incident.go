// Incident-plane wiring: the deployment side of the alarm→incident
// correlator (evidence-source taps into the log store, the network
// simulator and the overlay) and the query API's snapshot refresh.
package hunter

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"skeletonhunter/internal/analyzer"
	"skeletonhunter/internal/apiserver"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/probe"
)

// evidenceRecords pulls the retained probe records supporting one
// localized component — the correlator's Records source. Dispatch
// follows the log store's index dimensions: RNICs and switches query
// directly, links query their switch endpoints, containers their
// task-local index, and host-scoped components (boards, vswitches,
// host configs) fold every rail of the host.
// Every branch routes through sortRecords: a single-index query comes
// back in log append order, which tracks batch *arrival* order — an
// accident of delivery interleaving, not of what was measured. Evidence
// bundles (and the incident fingerprints digesting them) must be a pure
// function of the record set, so the order is canonicalized here.
func (d *Deployment) evidenceRecords(c component.ID, since time.Duration) []probe.Record {
	if host, rail, ok := component.RNICOf(c); ok {
		return sortRecords(d.Log.ByRNIC(host, rail, since))
	}
	if sw, ok := component.SwitchOf(c); ok {
		return sortRecords(d.Log.BySwitch(sw, since))
	}
	if sws := component.LinkSwitches(c); len(sws) > 0 {
		var out []probe.Record
		for _, sw := range sws {
			out = mergeRecords(out, d.Log.BySwitch(sw, since))
		}
		return sortRecords(out)
	}
	if name, ok := component.ContainerOf(c); ok {
		// Cluster container IDs render "<task>/c<idx>"; overlay-only
		// names ("vni…/ip") have no log index and yield no records.
		if i := strings.LastIndex(name, "/c"); i > 0 {
			if idx, err := strconv.Atoi(name[i+2:]); err == nil {
				return sortRecords(d.Log.ByContainer(name[:i], idx, since))
			}
		}
		return nil
	}
	if host, ok := component.HostOf(c); ok {
		var out []probe.Record
		for rail := 0; rail < d.Fabric.Spec.Rails; rail++ {
			out = mergeRecords(out, d.Log.ByRNIC(host, rail, since))
		}
		return sortRecords(out)
	}
	return nil
}

// recordIdent is the dedup identity of a probe record across merged
// index queries (a record indexed under two matched keys must count
// once in an evidence bundle). Path is excluded: it is not comparable,
// and the remaining fields already pin the observation.
type recordIdent struct {
	task                   string
	srcC, srcR, dstC, dstR int
	at, rtt                time.Duration
	lost                   bool
}

func identOf(r probe.Record) recordIdent {
	return recordIdent{
		task: string(r.Task),
		srcC: r.SrcContainer, srcR: r.SrcRail,
		dstC: r.DstContainer, dstR: r.DstRail,
		at: r.At, rtt: r.RTT, lost: r.Lost,
	}
}

// mergeRecords folds a second index query into an accumulated result,
// dropping duplicates and restoring ascending observation order so the
// merged stream is a pure function of the sets involved.
func mergeRecords(acc, more []probe.Record) []probe.Record {
	if len(acc) == 0 {
		return append(acc, more...)
	}
	seen := make(map[recordIdent]bool, len(acc))
	for _, r := range acc {
		seen[identOf(r)] = true
	}
	for _, r := range more {
		if !seen[identOf(r)] {
			seen[identOf(r)] = true
			acc = append(acc, r)
		}
	}
	return sortRecords(acc)
}

// sortRecords restores ascending observation order — the canonical
// evidence order, independent of how delivery interleaved the batches
// the records arrived in.
func sortRecords(recs []probe.Record) []probe.Record {
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := identOf(recs[i]), identOf(recs[j])
		if a.at != b.at {
			return a.at < b.at
		}
		if a.task != b.task {
			return a.task < b.task
		}
		if a.srcC != b.srcC {
			return a.srcC < b.srcC
		}
		if a.srcR != b.srcR {
			return a.srcR < b.srcR
		}
		if a.dstC != b.dstC {
			return a.dstC < b.dstC
		}
		if a.dstR != b.dstR {
			return a.dstR < b.dstR
		}
		return a.rtt < b.rtt
	})
	return recs
}

// refreshAPI re-renders the query API's published snapshot. Runs on
// the engine goroutine wherever incident or alarm state can change
// (alarm handling, sweeps, crash recovery); a cheap no-op without a
// server.
//
// The snapshot inputs are cached between refreshes and rebuilt only
// dirty: the incident set is re-cloned only when the correlator's
// mutation revision moved, and the alarm copy / blacklist rendering
// only when their (append-only between refreshes — crash recovery
// passes through a zero-length refresh) lengths changed. The cached
// slices are immutable once handed to the API server, which is what
// lets its delta renderer reuse pre-marshaled fragments across epochs
// instead of re-marshaling a 32K-entry blacklist every round.
func (d *Deployment) refreshAPI() {
	if d.API == nil {
		return
	}
	bl := d.Analyzer.Blacklist()
	if len(bl) != len(d.apiBlacklist) {
		ids := make([]component.ID, 0, len(bl))
		for id := range bl {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		entries := make([]apiserver.BlacklistEntry, 0, len(ids))
		for _, id := range ids {
			entries = append(entries, apiserver.BlacklistEntry{
				Component: id,
				Class:     component.ClassOf(id).String(),
				SinceSec:  bl[id].Seconds(),
			})
		}
		d.apiBlacklist = entries
	}
	if d.Incidents != nil {
		if rev := d.Incidents.Rev(); d.apiIncidents == nil || rev != d.apiIncidentsRev {
			d.apiIncidents = d.Incidents.Incidents()
			d.apiIncidentsRev = rev
		}
	}
	if alarms := d.Analyzer.Alarms(); len(alarms) != len(d.apiAlarms) {
		d.apiAlarms = append([]analyzer.Alarm(nil), alarms...)
	}
	d.API.Update(apiserver.Snapshot{
		Now:       d.Engine.Now(),
		Incidents: d.apiIncidents,
		Alarms:    d.apiAlarms,
		Blacklist: d.apiBlacklist,
		Stats:     d.Stats(),
	})
}
