package hunter

import (
	"testing"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/metrics"
	"skeletonhunter/internal/obs"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/topology"
	"skeletonhunter/internal/transport"
)

func TestCheckpointRecoveryRoundTrip(t *testing.T) {
	d := newDeployment(t)
	task := steadyTask(t, d)
	d.Run(5 * time.Minute)

	// An incident before the crash, so the checkpoint carries real
	// alarms and a blacklist worth preserving.
	a := task.Containers[0].Addrs[3]
	nic := topology.NIC{Host: a.Host, Rail: 3}
	link := topology.MakeLinkID(nic.ID(), d.Fabric.ToR(0, 3))
	in, err := d.Injector.Inject(faults.SwitchPortDown, faults.Target{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(3 * time.Minute)
	d.Injector.Clear(in)
	d.Run(2 * time.Minute)
	if len(d.Analyzer.Alarms()) == 0 || len(d.Analyzer.Blacklist()) == 0 {
		t.Fatal("incident left no alarms/blacklist to checkpoint")
	}

	fp := d.Fingerprint()
	ck := d.Checkpoint()
	if ck == nil || ck.Version != CheckpointVersion {
		t.Fatalf("checkpoint = %+v", ck)
	}
	if ck.At != d.Engine.Now() {
		t.Fatalf("checkpoint stamped %v at t=%v", ck.At, d.Engine.Now())
	}

	d.CrashController()
	if !d.Controller.Down() {
		t.Fatal("controller up after crash")
	}
	if got := len(d.Analyzer.Alarms()); got != 0 {
		t.Fatalf("crash left %d alarms behind", got)
	}
	if got := d.Controller.PingList(task.ID, 0); got != nil {
		t.Fatalf("dead controller served %d targets", len(got))
	}
	// A dead process writes no checkpoints — and must not clobber the
	// last good one with its amnesia.
	if d.Checkpoint() != nil {
		t.Fatal("checkpoint taken while down")
	}
	if d.LastCheckpoint() != ck {
		t.Fatal("crash-window checkpoint clobbered the recovery point")
	}
	d.Run(time.Minute) // agents idle against the dead controller

	if err := d.RecoverFromLast(); err != nil {
		t.Fatal(err)
	}
	if got := d.Controller.Epoch(); got != 2 {
		t.Fatalf("epoch after recovery = %d, want 2", got)
	}
	if got := d.Fingerprint(); got != fp {
		t.Fatalf("alarms/blacklist fingerprint changed across recovery:\n  before %s\n  after  %s", fp, got)
	}
	// Every lease came back stale: granted by epoch 1, awaiting renewal.
	if got := d.Controller.StaleRegistrations(task.ID); got != len(task.Containers) {
		t.Fatalf("stale registrations = %d, want %d", got, len(task.Containers))
	}

	// Agents notice the epoch bump on their next round and renew; the
	// registry converges to all-live on the new epoch with no expiries.
	d.Run(90 * time.Second)
	if got := d.Controller.StaleRegistrations(task.ID); got != 0 {
		t.Fatalf("%d leases still stale after agents resumed", got)
	}
	regs := d.Controller.Registrations(task.ID)
	if len(regs) != len(task.Containers) {
		t.Fatalf("registrations = %d, want %d", len(regs), len(task.Containers))
	}
	for _, r := range regs {
		if r.Epoch != 2 || r.Expires != 0 {
			t.Fatalf("lease not renewed: %+v", r)
		}
	}
	snap := d.Stats()
	if snap.Counters["agent-reregisters"] < uint64(len(task.Containers)) {
		t.Fatalf("agent-reregisters = %d, want ≥ %d", snap.Counters["agent-reregisters"], len(task.Containers))
	}
	if snap.Counters["controller-crashes"] != 1 || snap.Counters["controller-restores"] != 1 {
		t.Fatalf("crash/restore counters = %d/%d", snap.Counters["controller-crashes"], snap.Counters["controller-restores"])
	}
}

func TestColdRecoveryWithoutCheckpoint(t *testing.T) {
	// A controller that dies before its first checkpoint cold-starts:
	// empty registry on a bumped epoch, task membership resynced from
	// the cluster control plane, full retained log replayed.
	d := newDeployment(t)
	task := steadyTask(t, d)
	d.Run(5 * time.Minute)

	d.CrashController()
	if err := d.RecoverFromLast(); err != nil {
		t.Fatal(err)
	}
	if got := d.Controller.Epoch(); got != 2 {
		t.Fatalf("epoch = %d, want 2", got)
	}
	if _, ok := d.Controller.StatsOf(task.ID); !ok {
		t.Fatal("task not resynced from the cluster control plane")
	}
	if got := len(d.Controller.Registrations(task.ID)); got != 0 {
		t.Fatalf("cold start resurrected %d registrations", got)
	}

	d.Run(2 * time.Minute)
	regs := d.Controller.Registrations(task.ID)
	if len(regs) != len(task.Containers) {
		t.Fatalf("agents re-registered = %d, want %d", len(regs), len(task.Containers))
	}
	for _, r := range regs {
		if r.Epoch != 2 {
			t.Fatalf("lease on wrong epoch: %+v", r)
		}
	}
	if got := len(d.Analyzer.Alarms()); got != 0 {
		t.Fatalf("healthy cold recovery raised %d alarms", got)
	}
}

func TestWireAgentSurvivesControllerRecovery(t *testing.T) {
	// The wire path across a recovery: the checkpoint preserves the
	// per-task secret (a re-minted one would lock every fleet agent
	// out), and the epoch stamped on responses makes the client renew
	// its lease without being told.
	d := newDeployment(t)
	task := steadyTask(t, d)

	srv, err := d.ServeTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = nil
	defer srv.Close()
	secret, _ := d.TaskSecret(task.ID)

	c, err := transport.Dial(srv.Addr(), string(task.ID), 0, secret)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 1 {
		t.Fatalf("epoch = %d", got)
	}

	if d.Checkpoint() == nil {
		t.Fatal("checkpoint failed")
	}
	d.CrashController()
	if err := d.RecoverFromLast(); err != nil {
		t.Fatal(err)
	}
	s2, _ := d.TaskSecret(task.ID)
	if string(s2) != string(secret) {
		t.Fatal("recovery re-minted the task secret")
	}

	// Same connection, new incarnation: the response's epoch bump makes
	// the client re-register transparently.
	if _, err := c.PingList(); err != nil {
		t.Fatalf("ping list across recovery: %v", err)
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("client epoch after recovery = %d, want 2", got)
	}
	for _, r := range d.Controller.Registrations(task.ID) {
		if r.Container == 0 && (r.Epoch != 2 || r.Expires != 0) {
			t.Fatalf("wire agent's lease not renewed: %+v", r)
		}
	}
}

// crashRun is one crash-campaign arm's outcome.
type crashRun struct {
	snap        obs.Snapshot
	report      metrics.Report
	fingerprint string
	epoch       uint64
	stale       int
	regs        int
	regEpochsOK bool
}

// runCrashCampaign plays a fixed scenario — two Table-1 faults on a
// steady task with periodic checkpoints — optionally crashing the
// monitoring controller mid-incident (90 s downtime, recovery from the
// last checkpoint). Identical seeds and schedules keep arms comparable.
func runCrashCampaign(t *testing.T, crash bool) crashRun {
	t.Helper()
	d, err := New(Options{
		Seed:               29,
		Spec:               topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:                fastLag(),
		CheckpointInterval: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(10 * time.Minute) // steady state + detector history

	var rec *faults.ControllerCrash
	if crash {
		// Dies 70 s into the first incident's hold window — after the
		// 16:00 checkpoint, so the pre-crash detection is durable.
		rec = d.ScheduleControllerCrash(16*time.Minute+10*time.Second, 90*time.Second)
	}

	inject := func(issue faults.IssueType, tgt faults.Target) {
		in, err := d.Injector.Inject(issue, tgt)
		if err != nil {
			t.Fatal(err)
		}
		d.Run(4 * time.Minute)
		d.Injector.Clear(in)
		d.Run(10 * time.Minute) // quiet tail between incidents
	}
	a := task.Containers[0].Addrs[0]
	b := task.Containers[2].Addrs[3]
	d.Run(5 * time.Minute) // t=15:00
	inject(faults.RNICPortDown, faults.Target{Host: a.Host, Rail: a.Rail})
	inject(faults.RNICPortFlapping, faults.Target{Host: b.Host, Rail: b.Rail})

	if crash && (!rec.Crashed || !rec.Restored) {
		t.Fatalf("crash did not complete: %+v", rec)
	}
	regs := d.Controller.Registrations(task.ID)
	regEpochsOK := true
	for _, r := range regs {
		if r.Epoch != d.Controller.Epoch() {
			regEpochsOK = false
		}
	}
	return crashRun{
		snap:        d.Stats(),
		report:      metrics.Score(d.Injector.Injections(), d.Analyzer.Alarms(), 2*time.Minute),
		fingerprint: d.Fingerprint(),
		epoch:       d.Controller.Epoch(),
		stale:       d.Controller.StaleRegistrations(task.ID),
		regs:        len(regs),
		regEpochsOK: regEpochsOK,
	}
}

// TestControllerCrashCampaign is the acceptance scenario: the
// monitoring controller dies mid-incident and recovers from its last
// checkpoint; every surviving agent re-registers under the new epoch
// through the normal probing loop; accuracy stays within the graceful-
// degradation envelope of the uninterrupted arm; and recovery is
// deterministic — two crash runs from the same schedule produce
// identical alarms and blacklists.
func TestControllerCrashCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-incident simulated campaign")
	}
	clean := runCrashCampaign(t, false)
	crashed := runCrashCampaign(t, true)

	// The clean arm detects everything and never crashes.
	if got := clean.report.Recall(); got != 1 {
		t.Fatalf("clean recall = %v (report %+v)", got, clean.report)
	}
	if clean.epoch != 1 || clean.snap.Counters["controller-crashes"] != 0 {
		t.Fatalf("clean arm crashed: epoch=%d crashes=%d", clean.epoch, clean.snap.Counters["controller-crashes"])
	}

	// The crashed arm really died and recovered once…
	c := crashed.snap.Counters
	if c["controller-crashes"] != 1 || c["controller-restores"] != 1 {
		t.Fatalf("crash/restore counters = %d/%d", c["controller-crashes"], c["controller-restores"])
	}
	if c["checkpoints-taken"] == 0 {
		t.Fatal("no checkpoints taken before the crash")
	}
	// …and every surviving agent re-registered under the new epoch.
	if crashed.epoch != 2 {
		t.Fatalf("epoch = %d, want 2", crashed.epoch)
	}
	if crashed.regs != 4 || crashed.stale != 0 || !crashed.regEpochsOK {
		t.Fatalf("registry after recovery: regs=%d stale=%d epochsOK=%v",
			crashed.regs, crashed.stale, crashed.regEpochsOK)
	}
	if c["agent-reregisters"] < 4 {
		t.Fatalf("agent-reregisters = %d, want ≥ 4", c["agent-reregisters"])
	}

	// Graceful-degradation envelope: a 90 s outage may cost detection
	// latency but not the campaign.
	if got := crashed.report.Recall(); got < 0.5 {
		t.Errorf("crashed recall = %v, want ≥ 0.5 (report %+v)", got, crashed.report)
	}
	if got := crashed.report.Precision(); got < 0.5 {
		t.Errorf("crashed precision = %v, want ≥ 0.5 (report %+v)", got, crashed.report)
	}

	// Determinism fingerprint: recovery is a pure function of
	// checkpoint + logstore, so an identical rerun converges to
	// identical alarms and blacklists.
	again := runCrashCampaign(t, true)
	if again.fingerprint != crashed.fingerprint {
		t.Fatalf("crash recovery not deterministic:\n  run1 %s\n  run2 %s",
			crashed.fingerprint, again.fingerprint)
	}
}
