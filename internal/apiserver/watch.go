// The watch surface: a resumable change feed over incident-plane
// epochs. Every Update that changes a resource mints one epoch whose
// change set is rendered ONCE into a compact single-line JSON event —
// the bytes every watcher shares, whether it long-polls or streams —
// and retained in a bounded ring. A client holds a cursor (the last
// epoch it has seen) and asks for everything after it:
//
//	GET /v1/watch?cursor=N            → NDJSON events for epochs > N
//	GET /v1/watch?cursor=N&wait_ms=M  → long-poll: block up to M ms
//	                                    for the next epoch
//	GET /v1/watch?cursor=N&stream=sse → SSE: stream events as minted
//	                                    (id: = epoch, resumable via
//	                                    Last-Event-ID)
//
// Because event bytes are pre-rendered per epoch, a client that
// disconnects and resumes from its cursor receives a byte-identical
// event stream to one that never disconnected — as long as its cursor
// is still inside the backlog ring. A cursor that has aged out gets
// 410 Gone (long-poll) or a terminal resync event (SSE) and must
// re-fetch the full resources before watching again.
//
// Self-protection: the watcher registry bounds blocked long-pollers
// plus open SSE streams at MaxWatchers with counted shedding (503),
// and an SSE consumer too slow to drain the ring before its position
// ages out is evicted with a counted resync rather than stalling the
// publisher — publishing never blocks on any watcher.
package apiserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// epochEvent is one epoch's pre-rendered change event: a single line
// of compact JSON, shared by every watcher that observes the epoch.
type epochEvent struct {
	epoch uint64
	data  []byte // no trailing newline
}

// watchHub is the bounded epoch ring plus the broadcast primitive
// long-pollers and SSE streams wait on.
type watchHub struct {
	mu      sync.Mutex
	ring    []epochEvent // oldest first; at most backlog entries
	backlog int
	notify  chan struct{} // closed and replaced on every publish
	active  int           // registered watchers (waiting or streaming)
}

func (h *watchHub) init(backlog int) {
	h.backlog = backlog
	h.notify = make(chan struct{})
}

// publish appends one epoch's event and wakes every waiter. Called
// from Update (engine goroutine).
func (h *watchHub) publish(ev epochEvent) {
	h.mu.Lock()
	h.ring = append(h.ring, ev)
	if excess := len(h.ring) - h.backlog; excess > 0 {
		h.ring = append(h.ring[:0:0], h.ring[excess:]...)
	}
	notify := h.notify
	h.notify = make(chan struct{})
	h.mu.Unlock()
	close(notify)
}

// wait returns the channel the next publish will close.
func (h *watchHub) wait() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.notify
}

// since returns the retained events with epoch > cursor, oldest
// first. ok=false means events after the cursor have already aged out
// of the ring — the caller must resync.
func (h *watchHub) since(cursor uint64) (events []epochEvent, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.ring) == 0 {
		return nil, true
	}
	if cursor+1 < h.ring[0].epoch {
		return nil, false
	}
	for i := len(h.ring) - 1; i >= 0; i-- {
		if h.ring[i].epoch <= cursor {
			return append([]epochEvent(nil), h.ring[i+1:]...), true
		}
	}
	return append([]epochEvent(nil), h.ring...), true
}

// register admits one watcher under the MaxWatchers bound.
func (h *watchHub) register(max int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.active >= max {
		return false
	}
	h.active++
	return true
}

func (h *watchHub) unregister() {
	h.mu.Lock()
	h.active--
	h.mu.Unlock()
}

// renderEvent builds one epoch's shared event bytes: the changed
// paths in sorted order, each with its freshly rendered resource body
// compacted onto the single event line.
func renderEvent(epoch uint64, now time.Duration, changed []string, v *view) epochEvent {
	sort.Strings(changed)
	hdr, err := json.Marshal(struct {
		Epoch   uint64   `json:"epoch"`
		NowSec  float64  `json:"now_s"`
		Changed []string `json:"changed"`
	}{epoch, seconds(now), changed})
	if err != nil {
		panic(fmt.Sprintf("apiserver: marshal event header: %v", err))
	}
	buf := append(hdr[:len(hdr)-1], `,"resources":{`...)
	for i, path := range changed {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendQuote(buf, path)
		buf = append(buf, ':')
		res, ok := v.resources[path]
		if !ok {
			res = v.incidents[strings.TrimPrefix(path, "/v1/incidents/")]
		}
		buf = appendCompact(buf, res.body)
	}
	buf = append(buf, '}', '}')
	return epochEvent{epoch: epoch, data: buf}
}

// appendCompact appends src's JSON with insignificant whitespace
// removed, keeping event lines newline-free for NDJSON/SSE framing.
func appendCompact(dst, src []byte) []byte {
	inString := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inString {
			dst = append(dst, c)
			if c == '\\' && i+1 < len(src) {
				i++
				dst = append(dst, src[i])
			} else if c == '"' {
				inString = false
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		case '"':
			inString = true
		}
		dst = append(dst, c)
	}
	return dst
}

// serveWatch handles /v1/watch. Rate limiting has already run; the
// admission gate deliberately has not (see ServeHTTP).
func (s *Server) serveWatch(w http.ResponseWriter, r *http.Request) {
	s.watchReqs.Add(1)
	v := s.view.Load()
	if v == nil {
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusServiceUnavailable, "no snapshot published yet")
		return
	}
	current := s.epoch.Load()

	q := r.URL.Query()
	cursorStr := q.Get("cursor")
	if cursorStr == "" {
		cursorStr = r.Header.Get("Last-Event-ID")
	}
	cursor := current // no cursor: watch forward from now
	if cursorStr != "" {
		c, err := strconv.ParseUint(cursorStr, 10, 64)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "malformed cursor")
			return
		}
		if c > current {
			jsonError(w, http.StatusBadRequest, "cursor ahead of stream")
			return
		}
		cursor = c
	}

	if q.Get("stream") == "sse" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.serveSSE(w, r, cursor)
		return
	}
	s.serveLongPoll(w, r, cursor, q.Get("wait_ms"))
}

// serveLongPoll answers with NDJSON events past the cursor,
// optionally blocking up to wait_ms for the first one. The X-Epoch
// header carries the client's next cursor.
func (s *Server) serveLongPoll(w http.ResponseWriter, r *http.Request, cursor uint64, waitStr string) {
	var wait time.Duration
	if waitStr != "" {
		ms, err := strconv.ParseInt(waitStr, 10, 64)
		if err != nil || ms < 0 {
			jsonError(w, http.StatusBadRequest, "malformed wait_ms")
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > s.cfg.MaxPollWait {
			wait = s.cfg.MaxPollWait
		}
	}

	events, ok := s.hub.since(cursor)
	if !ok {
		s.watchResyncs.Add(1)
		s.writeGone(w, cursor)
		return
	}
	if len(events) == 0 && wait > 0 {
		if !s.hub.register(s.cfg.MaxWatchers) {
			s.watchShed.Add(1)
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusServiceUnavailable, "watcher registry full")
			return
		}
		timer := time.NewTimer(wait)
		for {
			notify := s.hub.wait()
			// Re-check after grabbing the channel: a publish may have
			// slipped between the last since() and wait().
			if events, ok = s.hub.since(cursor); !ok || len(events) > 0 {
				break
			}
			select {
			case <-notify:
				continue
			case <-timer.C:
			case <-r.Context().Done():
			}
			break // timed out or client gone: answer empty
		}
		timer.Stop()
		s.hub.unregister()
		if !ok {
			s.watchResyncs.Add(1)
			s.writeGone(w, cursor)
			return
		}
	}

	next := cursor
	if n := len(events); n > 0 {
		next = events[n-1].epoch
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Epoch", strconv.FormatUint(next, 10))
	for _, ev := range events {
		w.Write(ev.data)
		w.Write([]byte{'\n'})
	}
	s.watchEvents.Add(uint64(len(events)))
}

func (s *Server) writeGone(w http.ResponseWriter, cursor uint64) {
	oldest := uint64(0)
	s.hub.mu.Lock()
	if len(s.hub.ring) > 0 {
		oldest = s.hub.ring[0].epoch
	}
	s.hub.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusGone)
	fmt.Fprintf(w, "{\"error\": \"cursor %d aged out of the watch backlog\", \"oldest\": %d, \"epoch\": %d}\n",
		cursor, oldest, s.epoch.Load())
}

// serveSSE streams events as server-sent events until the client
// disconnects or falls behind the backlog (terminal resync event,
// counted as an eviction).
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, cursor uint64) {
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		jsonError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	if !s.hub.register(s.cfg.MaxWatchers) {
		s.watchShed.Add(1)
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusServiceUnavailable, "watcher registry full")
		return
	}
	defer s.hub.unregister()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		events, ok := s.hub.since(cursor)
		if !ok {
			// Fell behind the ring: evict rather than serve a gapped
			// stream the client cannot detect.
			s.watchEvicted.Add(1)
			fmt.Fprintf(w, "event: resync\ndata: {\"resync\": true, \"epoch\": %d}\n\n", s.epoch.Load())
			fl.Flush()
			return
		}
		for _, ev := range events {
			fmt.Fprintf(w, "id: %d\ndata: ", ev.epoch)
			w.Write(ev.data)
			w.Write([]byte("\n\n"))
			cursor = ev.epoch
		}
		if len(events) > 0 {
			s.watchEvents.Add(uint64(len(events)))
			fl.Flush()
		}
		notify := s.hub.wait()
		// Re-check before blocking: a publish may have landed between
		// since() and wait().
		if more, ok2 := s.hub.since(cursor); ok2 && len(more) == 0 {
			select {
			case <-notify:
			case <-r.Context().Done():
				return
			}
		}
	}
}
