// Tests for the epoch/watch surface: epoch minting, catch-up reads,
// byte-identical resume, cursor error handling, watcher shedding,
// long-poll wakeup, and SSE over a real listener.
package apiserver

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// revSnapshot is testSnapshot with the incident carrying a change
// revision, so the delta renderer can recognize it as unchanged.
func revSnapshot(now time.Duration, rev uint64) Snapshot {
	snap := testSnapshot(now)
	for i := range snap.Incidents {
		snap.Incidents[i].Rev = rev
	}
	return snap
}

func TestEpochAdvancesOnlyOnChange(t *testing.T) {
	s := New(Config{})
	if s.Epoch() != 0 {
		t.Fatalf("epoch before first update: %d", s.Epoch())
	}
	s.Update(revSnapshot(time.Minute, 1))
	if s.Epoch() != 1 {
		t.Fatalf("epoch after first update: %d", s.Epoch())
	}

	// Same content, new wall-clock Now, different stats: no new epoch —
	// stats churn on every request and must not wake watchers.
	snap := revSnapshot(2*time.Minute, 1)
	snap.Stats.Counters = map[string]uint64{"api-requests": 999}
	s.Update(snap)
	if s.Epoch() != 1 {
		t.Fatalf("epoch after no-change update: %d", s.Epoch())
	}

	// Incident mutated (revision moved): epoch advances.
	s.Update(revSnapshot(3*time.Minute, 2))
	if s.Epoch() != 2 {
		t.Fatalf("epoch after change: %d", s.Epoch())
	}
}

// watchLines fetches /v1/watch from a cursor (no wait) and returns the
// response plus its NDJSON lines.
func watchLines(t *testing.T, s *Server, cursor uint64) (*httptest.ResponseRecorder, []string) {
	t.Helper()
	w := get(t, s, fmt.Sprintf("/v1/watch?cursor=%d", cursor), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("watch cursor=%d: status %d: %s", cursor, w.Code, w.Body.String())
	}
	body := strings.TrimSuffix(w.Body.String(), "\n")
	if body == "" {
		return w, nil
	}
	return w, strings.Split(body, "\n")
}

func TestWatchCatchup(t *testing.T) {
	s := New(Config{RatePerSec: 1000, Burst: 1000})
	for rev := uint64(1); rev <= 3; rev++ {
		s.Update(revSnapshot(time.Duration(rev)*time.Minute, rev))
	}

	w, lines := watchLines(t, s, 0)
	if len(lines) != 3 {
		t.Fatalf("expected 3 events, got %d", len(lines))
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	if w.Header().Get("X-Epoch") != "3" {
		t.Fatalf("X-Epoch %q", w.Header().Get("X-Epoch"))
	}
	for i, line := range lines {
		var ev struct {
			Epoch     uint64                     `json:"epoch"`
			NowSec    float64                    `json:"now_s"`
			Changed   []string                   `json:"changed"`
			Resources map[string]json.RawMessage `json:"resources"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event %d: invalid JSON: %v", i, err)
		}
		if ev.Epoch != uint64(i+1) {
			t.Fatalf("event %d: epoch %d", i, ev.Epoch)
		}
		if len(ev.Changed) == 0 || len(ev.Resources) != len(ev.Changed) {
			t.Fatalf("event %d: changed %v vs %d resources", i, ev.Changed, len(ev.Resources))
		}
		// Every changed path carries its full new body, compacted but
		// content-equal to what a GET of the path now serves (the last
		// event's bodies are the current view's).
		for _, path := range ev.Changed {
			if _, ok := ev.Resources[path]; !ok {
				t.Fatalf("event %d: changed path %s missing from resources", i, path)
			}
		}
	}

	// Catch-up from a mid-stream cursor yields only the tail.
	_, tail := watchLines(t, s, 2)
	if len(tail) != 1 || tail[0] != lines[2] {
		t.Fatalf("cursor=2 tail mismatch: %q", tail)
	}
	// Caught-up cursor with no wait: empty 200, X-Epoch echoes cursor.
	w, rest := watchLines(t, s, 3)
	if len(rest) != 0 || w.Header().Get("X-Epoch") != "3" {
		t.Fatalf("caught-up watch: %d lines, X-Epoch %q", len(rest), w.Header().Get("X-Epoch"))
	}
}

// TestWatchResumeByteIdentical pins the acceptance bar: a client that
// disconnects mid-campaign and resumes from its cursor sees the same
// bytes as one that read the whole stream in one go.
func TestWatchResumeByteIdentical(t *testing.T) {
	s := New(Config{RatePerSec: 1000, Burst: 1000})
	// The incident is a gray one accumulating causal-chain evidence: a
	// new chain per epoch, so every watch delta re-renders the chains
	// array and resume identity covers the correlate evidence path.
	for rev := uint64(1); rev <= 6; rev++ {
		snap := revSnapshot(time.Duration(rev)*time.Minute, rev)
		snap.Incidents[0].AlarmCount = int(rev)
		snap.Incidents[0].Gray = true
		for c := uint64(1); c <= rev; c++ {
			snap.Incidents[0].Evidence.Chains = append(snap.Incidents[0].Evidence.Chains,
				fmt.Sprintf("switch/tor/0/0 queue-growth leads task t0 rtt inflation by ~%d round(s) (support 3, confidence 0.67)", c))
		}
		s.Update(snap)
	}

	_, uninterrupted := watchLines(t, s, 0)
	if len(uninterrupted) != 6 {
		t.Fatalf("expected 6 events, got %d", len(uninterrupted))
	}
	if !strings.Contains(uninterrupted[5], `"gray":true`) || !strings.Contains(uninterrupted[5], "queue-growth leads") {
		t.Fatal("watch deltas dropped the gray flag or chain evidence")
	}

	// Interrupted client: read, "disconnect" after the second event,
	// resume from the epoch it last saw.
	_, first := watchLines(t, s, 0)
	first = first[:2]
	var ev struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(first[1]), &ev); err != nil {
		t.Fatal(err)
	}
	_, rest := watchLines(t, s, ev.Epoch)
	resumed := append(first, rest...)

	if len(resumed) != len(uninterrupted) {
		t.Fatalf("resumed %d events vs %d uninterrupted", len(resumed), len(uninterrupted))
	}
	for i := range resumed {
		if resumed[i] != uninterrupted[i] {
			t.Fatalf("event %d differs after resume:\n%s\nvs\n%s", i, resumed[i], uninterrupted[i])
		}
	}
}

func TestWatchCursorErrors(t *testing.T) {
	s := New(Config{WatchBacklog: 2, RatePerSec: 1000, Burst: 1000})
	s.Update(revSnapshot(time.Minute, 1))

	for _, bad := range []string{"/v1/watch?cursor=abc", "/v1/watch?cursor=-1", "/v1/watch?cursor=99"} {
		if w := get(t, s, bad, nil); w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d", bad, w.Code)
		}
	}
	if w := get(t, s, "/v1/watch?cursor=0&wait_ms=abc", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed wait_ms: status %d", w.Code)
	}

	// Age cursor 0 out of the 2-deep backlog: epochs 1..4 minted, ring
	// holds {3,4}, so cursor 0 (needs epoch 1) is gone.
	for rev := uint64(2); rev <= 4; rev++ {
		s.Update(revSnapshot(time.Duration(rev)*time.Minute, rev))
	}
	w := get(t, s, "/v1/watch?cursor=0", nil)
	if w.Code != http.StatusGone {
		t.Fatalf("aged-out cursor: status %d", w.Code)
	}
	var gone struct {
		Oldest uint64 `json:"oldest"`
		Epoch  uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &gone); err != nil {
		t.Fatal(err)
	}
	if gone.Oldest != 3 || gone.Epoch != 4 {
		t.Fatalf("gone body: %+v", gone)
	}
	if s.Stats()["api-watch-resyncs"] != 1 {
		t.Fatalf("resync counter: %v", s.Stats())
	}
	// Cursor 2 still works: ring[0].epoch is 3, so 2 is exactly at the
	// retention edge.
	if _, lines := watchLines(t, s, 2); len(lines) != 2 {
		t.Fatalf("edge cursor: %d events", len(lines))
	}
}

func TestWatchShedAtCap(t *testing.T) {
	s := New(Config{MaxWatchers: 1, RatePerSec: 1000, Burst: 1000})
	s.Update(revSnapshot(time.Minute, 1))

	// Occupy the single watcher slot as a blocked long-poller would.
	if !s.hub.register(s.cfg.MaxWatchers) {
		t.Fatal("first registration refused")
	}
	w := get(t, s, "/v1/watch?cursor=1&wait_ms=5000", nil)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("watcher cap: status %d", w.Code)
	}
	if s.Stats()["api-watch-shed"] != 1 {
		t.Fatalf("shed counter: %v", s.Stats())
	}
	s.hub.unregister()
	// With the slot free, a caught-up poll with a tiny wait completes.
	if w = get(t, s, "/v1/watch?cursor=1&wait_ms=1", nil); w.Code != http.StatusOK {
		t.Fatalf("after release: status %d", w.Code)
	}
}

// TestLongPollWakesOnUpdate pins that a blocked long-poller returns as
// soon as an epoch is minted, not after its full wait.
func TestLongPollWakesOnUpdate(t *testing.T) {
	s := New(Config{RatePerSec: 1000, Burst: 1000})
	s.Update(revSnapshot(time.Minute, 1))

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest(http.MethodGet, "/v1/watch?cursor=1&wait_ms=30000", nil)
		req.RemoteAddr = "192.0.2.9:1"
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		done <- w
	}()

	// Wait for the poller to block (registered in the hub), then mint
	// an epoch.
	for i := 0; ; i++ {
		s.hub.mu.Lock()
		active := s.hub.active
		s.hub.mu.Unlock()
		if active == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("long-poller never registered")
		}
		time.Sleep(time.Millisecond)
	}
	s.Update(revSnapshot(2*time.Minute, 2))

	select {
	case w := <-done:
		if w.Code != http.StatusOK || w.Header().Get("X-Epoch") != "2" {
			t.Fatalf("woken poll: status %d, X-Epoch %q", w.Code, w.Header().Get("X-Epoch"))
		}
		if !strings.Contains(w.Body.String(), `"epoch":2`) {
			t.Fatalf("woken poll body: %s", w.Body.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poller did not wake on publish")
	}
}

// readSSEFrames reads n SSE frames (id + data pairs) off a stream.
func readSSEFrames(t *testing.T, r *bufio.Reader, n int) []string {
	t.Helper()
	var frames []string
	var id, data string
	for len(frames) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("sse read after %d frames: %v", len(frames), err)
		}
		line = strings.TrimSuffix(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			frames = append(frames, id+"\x00"+data)
			id, data = "", ""
		}
	}
	return frames
}

// TestSSEStreamAndResume exercises SSE over a real listener: frames
// arrive as epochs are minted, and a second client resuming via
// Last-Event-ID receives byte-identical data lines.
func TestSSEStreamAndResume(t *testing.T) {
	s := New(Config{RatePerSec: 100000, Burst: 100000})
	s.Update(revSnapshot(time.Minute, 1))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/watch?cursor=0&stream=sse", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	// First frame replays epoch 1; then mint two more live.
	frames := readSSEFrames(t, br, 1)
	s.Update(revSnapshot(2*time.Minute, 2))
	s.Update(revSnapshot(3*time.Minute, 3))
	frames = append(frames, readSSEFrames(t, br, 2)...)
	cancel()

	for i, f := range frames {
		id, data, _ := strings.Cut(f, "\x00")
		if id != strconv.Itoa(i+1) {
			t.Fatalf("frame %d: id %q", i, id)
		}
		if !strings.Contains(data, fmt.Sprintf(`"epoch":%d`, i+1)) {
			t.Fatalf("frame %d: data %s", i, data)
		}
	}

	// Resume from epoch 1 via Last-Event-ID: frames 2 and 3, data
	// byte-identical to the live stream's.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	req2, _ := http.NewRequestWithContext(ctx2, http.MethodGet, base+"/v1/watch?stream=sse", nil)
	req2.Header.Set("Last-Event-ID", "1")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	resumed := readSSEFrames(t, bufio.NewReader(resp2.Body), 2)
	for i, f := range resumed {
		if f != frames[i+1] {
			t.Fatalf("resumed frame %d differs:\n%s\nvs\n%s", i, f, frames[i+1])
		}
	}
}

// TestWatchBypassesAdmission pins that blocked long-pollers do not pin
// the admission gate's slots.
func TestWatchBypassesAdmission(t *testing.T) {
	s := New(Config{MaxInFlight: 1})
	s.Update(revSnapshot(time.Minute, 1))
	s.admit <- struct{}{} // saturate the resource gate
	if w := get(t, s, "/v1/watch?cursor=1", nil); w.Code != http.StatusOK {
		t.Fatalf("watch under saturated admission: %d", w.Code)
	}
	if w := get(t, s, "/v1/stats", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("resource get should still shed: %d", w.Code)
	}
}

func TestAppendCompact(t *testing.T) {
	cases := []struct{ in, want string }{
		{"{\n  \"a\": 1\n}\n", `{"a":1}`},
		{`{"s": "ke\"ep  spaces\n"}`, `{"s":"ke\"ep  spaces\n"}`},
		{"[1, 2,\t3]", "[1,2,3]"},
	}
	for _, c := range cases {
		if got := string(appendCompact(nil, []byte(c.in))); got != c.want {
			t.Fatalf("appendCompact(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Compacting an indented marshal matches a compact marshal.
	v := map[string]any{"x": []any{"a b", 1.5, true}, "y": "q\"z"}
	ind, _ := json.MarshalIndent(v, "", "  ")
	com, _ := json.Marshal(v)
	if got := appendCompact(nil, append(ind, '\n')); !bytes.Equal(got, com) {
		t.Fatalf("compact mismatch: %s vs %s", got, com)
	}
}

// TestHubSince covers the ring's retention edges directly.
func TestHubSince(t *testing.T) {
	var h watchHub
	h.init(3)
	if evs, ok := h.since(0); !ok || len(evs) != 0 {
		t.Fatalf("empty ring: %v %v", evs, ok)
	}
	for e := uint64(1); e <= 5; e++ {
		h.publish(epochEvent{epoch: e, data: []byte{byte(e)}})
	}
	// Ring holds 3..5.
	if _, ok := h.since(1); ok {
		t.Fatal("cursor 1 should have aged out")
	}
	if evs, ok := h.since(2); !ok || len(evs) != 3 || evs[0].epoch != 3 {
		t.Fatalf("cursor 2: %v %v", evs, ok)
	}
	if evs, ok := h.since(4); !ok || len(evs) != 1 || evs[0].epoch != 5 {
		t.Fatalf("cursor 4: %v %v", evs, ok)
	}
	if evs, ok := h.since(5); !ok || len(evs) != 0 {
		t.Fatalf("cursor 5: %v %v", evs, ok)
	}
}
