// Per-client token-bucket rate limiting. Buckets refill continuously
// at RatePerSec up to Burst; each admitted request spends one token.
// The table is bounded: when MaxClients distinct clients have buckets,
// the table resets wholesale — a deliberate trade that briefly refills
// every bucket rather than letting an address-spraying client grow the
// map without bound.
package apiserver

import "time"

type bucket struct {
	tokens float64
	last   time.Time
}

// allow spends one token from the client's bucket, minting a full
// bucket for first-seen clients.
func (s *Server) allow(client string) bool {
	now := s.cfg.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[client]
	if !ok {
		if len(s.buckets) >= s.cfg.MaxClients {
			s.buckets = make(map[string]*bucket)
		}
		b = &bucket{tokens: s.cfg.Burst, last: now}
		s.buckets[client] = b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += s.cfg.RatePerSec * dt.Seconds()
		if b.tokens > s.cfg.Burst {
			b.tokens = s.cfg.Burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
