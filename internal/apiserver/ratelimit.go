// Per-client token-bucket rate limiting. Buckets refill continuously
// at RatePerSec up to Burst; each admitted request spends one token.
// The table is bounded: when MaxClients distinct clients have buckets,
// a new client may only mint one by evicting buckets that have been
// idle long enough to have refilled completely — forgetting those
// grants nothing, so a throttled client can never launder its debt
// through the eviction (the old wholesale reset handed every throttled
// client a fresh full bucket whenever any address-spray filled the
// table). If no bucket is evictable the newcomer is refused outright:
// under an active spray the table fails closed instead of open.
package apiserver

import "time"

type bucket struct {
	tokens float64
	last   time.Time
}

// allow spends one token from the client's bucket, minting a full
// bucket for first-seen clients.
func (s *Server) allow(client string) bool {
	now := s.cfg.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[client]
	if !ok {
		if len(s.buckets) >= s.cfg.MaxClients && !s.evictIdleLocked(now) {
			return false
		}
		b = &bucket{tokens: s.cfg.Burst, last: now}
		s.buckets[client] = b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += s.cfg.RatePerSec * dt.Seconds()
		if b.tokens > s.cfg.Burst {
			b.tokens = s.cfg.Burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictIdleLocked drops every bucket idle for at least a full refill
// (Burst/RatePerSec seconds): such a client would come back to a full
// bucket anyway, so evicting it is unobservable. Reports whether any
// slot was freed. Runs under s.mu, only on the full-table insert path.
func (s *Server) evictIdleLocked(now time.Time) bool {
	idle := time.Duration(float64(time.Second) * s.cfg.Burst / s.cfg.RatePerSec)
	evicted := false
	for k, b := range s.buckets {
		if now.Sub(b.last) >= idle {
			delete(s.buckets, k)
			evicted = true
		}
	}
	return evicted
}
