// Delta-rendering tests and benchmarks: the delta path must serve
// byte-identical resources to the wholesale re-marshal baseline, and
// measurably beat it on allocations when most of the state is
// unchanged between updates.
package apiserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"skeletonhunter/internal/analyzer"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/incident"
	"skeletonhunter/internal/localize"
	"skeletonhunter/internal/obs"
)

// fleetSnapshot builds a snapshot with incs tracked incidents, bl
// blacklist entries, and alarms alarm records — the shape of a large
// campaign's steady state.
func fleetSnapshot(now time.Duration, incs, bl, alarms int) Snapshot {
	snap := Snapshot{Now: now, Stats: obs.Snapshot{Counters: map[string]uint64{"alarms": uint64(alarms)}}}
	for i := 0; i < incs; i++ {
		snap.Incidents = append(snap.Incidents, incident.Incident{
			ID:          fmt.Sprintf("inc-%04d", i),
			Component:   component.ID(fmt.Sprintf("switch/tor/%d/%d", i/8, i%8)),
			Class:       component.ClassInterHostNetwork,
			Severity:    incident.SevCritical,
			State:       incident.Open,
			OpenedAt:    now,
			LastAlarmAt: now,
			AlarmCount:  1,
			Rev:         uint64(i + 1),
		})
	}
	for i := 0; i < bl; i++ {
		snap.Blacklist = append(snap.Blacklist, BlacklistEntry{
			Component: component.ID(fmt.Sprintf("rnic/%d/%d", i/8, i%8)),
			Class:     "intra-host network",
			SinceSec:  float64(i),
		})
	}
	for i := 0; i < alarms; i++ {
		snap.Alarms = append(snap.Alarms, analyzer.Alarm{
			At: time.Duration(i) * time.Second,
			Verdicts: []localize.Verdict{
				{Components: []component.ID{"switch/tor/0/0"}, Layer: localize.LayerUnderlay, Detail: "port down", Pairs: 3},
			},
		})
	}
	return snap
}

// mutateOne bumps one incident's revision and content in place — the
// typical per-round change against an otherwise stable fleet.
func mutateOne(snap *Snapshot, i int, rev uint64) {
	snap.Incidents[i].AlarmCount++
	snap.Incidents[i].LastAlarmAt += time.Second
	snap.Incidents[i].Rev = rev
}

// TestDeltaMatchesWholesale feeds the same snapshot sequence to a
// delta server and a DisableDeltas baseline and requires every served
// resource — bodies and ETags — to be byte-identical after every
// update. Now is held fixed: delta semantics give each resource its
// "as of last change" timestamp, so only a fixed clock makes the two
// modes comparable wholesale.
func TestDeltaMatchesWholesale(t *testing.T) {
	delta := New(Config{})
	whole := New(Config{DisableDeltas: true})

	const now = 10 * time.Minute
	snap := fleetSnapshot(now, 8, 32, 4)
	rev := uint64(100)

	check := func(step string) {
		t.Helper()
		dv, wv := delta.view.Load(), whole.view.Load()
		for path, wres := range wv.resources {
			dres := dv.resources[path]
			if !bytes.Equal(dres.body, wres.body) {
				t.Fatalf("%s: %s body diverged:\n%s\nvs\n%s", step, path, dres.body, wres.body)
			}
			if dres.etag != wres.etag {
				t.Fatalf("%s: %s etag diverged: %s vs %s", step, path, dres.etag, wres.etag)
			}
		}
		if len(dv.incidents) != len(wv.incidents) {
			t.Fatalf("%s: incident count %d vs %d", step, len(dv.incidents), len(wv.incidents))
		}
		for id, wres := range wv.incidents {
			if dres := dv.incidents[id]; !bytes.Equal(dres.body, wres.body) || dres.etag != wres.etag {
				t.Fatalf("%s: incident %s diverged", step, id)
			}
		}
	}
	update := func(step string) {
		t.Helper()
		delta.Update(snap)
		whole.Update(snap)
		check(step)
	}

	update("initial")
	update("no-op republish")

	rev++
	mutateOne(&snap, 3, rev)
	update("one incident mutated")

	// A remediation pass touches the incident: audit notes land in the
	// evidence, the repair clock stamps, and the revision bumps — the
	// delta path must re-render the fragment with the new fields.
	rev++
	snap.Incidents[3].Evidence.Remediation = append(snap.Incidents[3].Evidence.Remediation,
		"remedy#1 drain-host: planned for host/3",
		"remedy#1 drain-host: executed (cordoned host 3, migrated 2 container(s))")
	snap.Incidents[3].RepairedAt = now + 30*time.Second
	snap.Incidents[3].TimeToRepair = 30 * time.Second
	snap.Incidents[3].Rev = rev
	update("incident remediated")

	snap.Alarms = append(snap.Alarms, analyzer.Alarm{At: now, Verdicts: nil})
	update("alarm appended")

	snap.Blacklist = append(snap.Blacklist, BlacklistEntry{Component: "rnic/9/9", Class: "intra-host network", SinceSec: 601})
	update("blacklist grown")

	rev++
	snap.Incidents = append(snap.Incidents, incident.Incident{
		ID: "inc-new", Component: "host/99", Class: component.ClassHostBoard,
		Severity: incident.SevMedium, State: incident.Open, OpenedAt: now, Rev: rev,
	})
	update("incident opened")

	// A gray incident from the correlate layer: the Gray flag and the
	// causal-chain evidence must render identically on both paths, in
	// the list fragment and the detail body.
	rev++
	snap.Incidents = append(snap.Incidents, incident.Incident{
		ID: "inc-gray", Component: component.RNIC(7, 0), Class: component.ClassRNIC,
		Severity: incident.SevMedium, State: incident.Open, OpenedAt: now,
		LastAlarmAt: now, AlarmCount: 1, Gray: true, Rev: rev,
		Evidence: incident.Evidence{
			Verdicts:    []string{"[correlate] rnic/h7/r0 throughput-droop change-point (score 8.3σ, 4 crossing(s), 2 suppressed)"},
			Chains:      []string{"switch/tor/0/0 queue-growth leads task t0 rtt inflation by ~2 round(s) (support 3, confidence 0.67)"},
			Remediation: []string{"gray-failure policy: page with evidence, no automatic remediation"},
		},
	})
	update("gray incident opened")

	rev++
	gi := &snap.Incidents[len(snap.Incidents)-1]
	gi.Evidence.Chains = append(gi.Evidence.Chains,
		"rnic/h7/r0 throughput-droop leads task t1 rtt inflation by ~1 round(s) (support 4, confidence 0.75)")
	gi.AlarmCount++
	gi.Rev = rev
	update("gray chains grown")

	snap.Incidents = snap.Incidents[1:]
	update("incident dropped")

	// The delta server must actually have been reusing fragments — its
	// epoch advanced with every change but skipped the no-op republish.
	if d, w := delta.Epoch(), whole.Epoch(); d != w-1 {
		t.Fatalf("epochs: delta %d, wholesale %d (wholesale re-renders even no-ops)", d, w)
	}
}

// TestStitchListMatchesMarshalIndent pins the fragment-stitched list
// body to the bytes json.MarshalIndent would produce, the property
// that makes fragment reuse invisible to clients.
func TestStitchListMatchesMarshalIndent(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		snap := fleetSnapshot(time.Minute, n, 0, 0)
		frags := make([][]byte, 0, n)
		views := make([]incidentView, 0, n)
		for _, in := range snap.Incidents {
			frags = append(frags, summaryFragment(in))
			views = append(views, toIncidentView(in))
		}
		got := stitchList(frags, snap.Now)
		want := mustResource(map[string]any{"incidents": views, "now_s": seconds(snap.Now)})
		if !bytes.Equal(got.body, want.body) {
			t.Fatalf("n=%d: stitched list diverges from MarshalIndent:\n%s\nvs\n%s", n, got.body, want.body)
		}
		if got.etag != want.etag {
			t.Fatalf("n=%d: etag %s vs %s", n, got.etag, want.etag)
		}
		if json.Valid(got.body) != true {
			t.Fatalf("n=%d: stitched body is not valid JSON", n)
		}
	}
}

// benchUpdate measures steady-state publishing against a large fleet:
// one incident mutates per update, everything else is unchanged.
func benchUpdate(b *testing.B, cfg Config) {
	s := New(cfg)
	snap := fleetSnapshot(10*time.Minute, 256, 2048, 64)
	s.Update(snap)
	rev := uint64(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rev++
		mutateOne(&snap, i%len(snap.Incidents), rev)
		s.Update(snap)
	}
}

func BenchmarkUpdateDelta(b *testing.B)     { benchUpdate(b, Config{}) }
func BenchmarkUpdateWholesale(b *testing.B) { benchUpdate(b, Config{DisableDeltas: true}) }
