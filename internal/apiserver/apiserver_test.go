package apiserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"skeletonhunter/internal/analyzer"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/incident"
	"skeletonhunter/internal/localize"
	"skeletonhunter/internal/obs"
	"skeletonhunter/internal/probe"
)

func testSnapshot(now time.Duration) Snapshot {
	return Snapshot{
		Now: now,
		Incidents: []incident.Incident{
			{
				ID:        "inc-0001",
				Component: component.ID("switch/tor/0/0"),
				Class:     component.ClassInterHostNetwork,
				Severity:  incident.SevCritical,
				State:     incident.Open,
				OpenedAt:  10 * time.Minute,
				Evidence: incident.Evidence{
					GatheredAt:   10 * time.Minute,
					TotalRecords: 2,
					Records: []probe.Record{
						{Task: "job", RTT: 150 * time.Microsecond},
						{Task: "job", Lost: true},
					},
					Queues:   []incident.QueueSample{{Node: "tor/0/0", Depth: 33}},
					Verdicts: []string{"[underlay] port down"},
				},
			},
		},
		Alarms: []analyzer.Alarm{
			{At: 10 * time.Minute, Verdicts: []localize.Verdict{
				{Components: []component.ID{"switch/tor/0/0"}, Layer: localize.LayerUnderlay, Detail: "port down", Pairs: 3},
			}},
		},
		Blacklist: []BlacklistEntry{{Component: "switch/tor/0/0", Class: "inter-host network", SinceSec: 600}},
		Stats:     obs.Snapshot{Counters: map[string]uint64{"alarms": 1}},
	}
}

func get(t *testing.T, s *Server, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.RemoteAddr = "192.0.2.1:12345"
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestResourcesServeJSONWithETag(t *testing.T) {
	s := New(Config{})
	s.Update(testSnapshot(10 * time.Minute))

	for _, path := range []string{"/v1/incidents", "/v1/incidents/inc-0001", "/v1/alarms", "/v1/blacklist", "/v1/stats"} {
		w := get(t, s, path, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d", path, w.Code)
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content-type %q", path, ct)
		}
		etag := w.Header().Get("ETag")
		if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
			t.Fatalf("%s: malformed etag %q", path, etag)
		}
		var body map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: invalid JSON: %v", path, err)
		}
		if _, ok := body["now_s"]; !ok {
			t.Fatalf("%s: missing now_s", path)
		}
	}

	// Detail endpoint carries the evidence bundle.
	w := get(t, s, "/v1/incidents/inc-0001", nil)
	if !strings.Contains(w.Body.String(), "port down") ||
		!strings.Contains(w.Body.String(), "total_records") {
		t.Fatalf("detail missing evidence: %s", w.Body.String())
	}
}

func TestETagRevalidation(t *testing.T) {
	s := New(Config{})
	s.Update(testSnapshot(10 * time.Minute))

	w := get(t, s, "/v1/incidents", nil)
	etag := w.Header().Get("ETag")

	// Revalidation against the same view: 304, no body.
	w = get(t, s, "/v1/incidents", map[string]string{"If-None-Match": etag})
	if w.Code != http.StatusNotModified || w.Body.Len() != 0 {
		t.Fatalf("revalidate: %d, %d body bytes", w.Code, w.Body.Len())
	}
	// Weak-prefixed and list forms match too.
	for _, h := range []string{"W/" + etag, `"zzz", ` + etag, "*"} {
		if w = get(t, s, "/v1/incidents", map[string]string{"If-None-Match": h}); w.Code != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: %d", h, w.Code)
		}
	}

	// State changes → new ETag, stale tag gets a full 200.
	snap := testSnapshot(11 * time.Minute)
	snap.Incidents[0].State = incident.Mitigating
	s.Update(snap)
	w = get(t, s, "/v1/incidents", map[string]string{"If-None-Match": etag})
	if w.Code != http.StatusOK {
		t.Fatalf("stale etag: %d", w.Code)
	}
	if w.Header().Get("ETag") == etag {
		t.Fatal("etag unchanged across state change")
	}

	if s.Stats()["api-not-modified"] != 4 {
		t.Fatalf("not-modified counter: %v", s.Stats())
	}
}

func TestErrors(t *testing.T) {
	s := New(Config{})

	// No snapshot yet: 503 with Retry-After.
	w := get(t, s, "/v1/incidents", nil)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("no view: %d", w.Code)
	}

	s.Update(testSnapshot(time.Minute))

	// Unknown paths: 404.
	for _, path := range []string{"/v1/incidents/inc-9999", "/v1/nope", "/"} {
		if w = get(t, s, path, nil); w.Code != http.StatusNotFound {
			t.Fatalf("%s: %d", path, w.Code)
		}
	}

	// Write methods: 405 with Allow.
	req := httptest.NewRequest(http.MethodPost, "/v1/incidents", strings.NewReader("{}"))
	req.RemoteAddr = "192.0.2.1:1"
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") == "" {
		t.Fatalf("POST: %d", rec.Code)
	}

	// HEAD: headers only.
	req = httptest.NewRequest(http.MethodHead, "/v1/incidents", nil)
	req.RemoteAddr = "192.0.2.1:1"
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 || rec.Header().Get("ETag") == "" {
		t.Fatalf("HEAD: %d, %d body bytes", rec.Code, rec.Body.Len())
	}
}

// TestHeadContentLength pins the HEAD/ETag interplay: a 200 HEAD
// carries the Content-Length of the body it elides (so monitors can
// size resources without fetching them), and a 304 — HEAD or GET —
// carries no body length at all.
func TestHeadContentLength(t *testing.T) {
	s := New(Config{})
	s.Update(testSnapshot(10 * time.Minute))

	full := get(t, s, "/v1/incidents", nil)
	wantLen := strconv.Itoa(full.Body.Len())
	if got := full.Header().Get("Content-Length"); got != wantLen {
		t.Fatalf("GET Content-Length %q, want %q", got, wantLen)
	}
	etag := full.Header().Get("ETag")

	head := func(hdr map[string]string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodHead, "/v1/incidents", nil)
		req.RemoteAddr = "192.0.2.1:1"
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w
	}

	w := head(nil)
	if w.Code != http.StatusOK || w.Body.Len() != 0 {
		t.Fatalf("HEAD: %d, %d body bytes", w.Code, w.Body.Len())
	}
	if got := w.Header().Get("Content-Length"); got != wantLen {
		t.Fatalf("HEAD Content-Length %q, want %q", got, wantLen)
	}
	if w.Header().Get("ETag") != etag {
		t.Fatalf("HEAD ETag %q, want %q", w.Header().Get("ETag"), etag)
	}

	// Conditional HEAD against the current tag: 304, no length claim.
	w = head(map[string]string{"If-None-Match": etag})
	if w.Code != http.StatusNotModified || w.Header().Get("Content-Length") != "" {
		t.Fatalf("conditional HEAD: %d, Content-Length %q", w.Code, w.Header().Get("Content-Length"))
	}
}

func TestETagMatches(t *testing.T) {
	const tag = `"abc123"`
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{tag, true},
		{`"zzz"`, false},
		{"*", true},
		{"W/" + tag, true},
		{`"one", "two", ` + tag, true},
		{`"one","two",` + tag, true},
		{`"one", W/` + tag + `, "two"`, true},
		{"  " + tag + "  ", true},
		{`"one", "two"`, false},
		{"abc123", false},   // unquoted: not the same tag
		{`W/"zzz"`, false},  // weak prefix on the wrong tag
		{`"ABC123"`, false}, // tags are case-sensitive
	}
	for _, c := range cases {
		if got := etagMatches(c.header, tag); got != c.want {
			t.Fatalf("etagMatches(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

func TestRateLimitPerClient(t *testing.T) {
	clock := time.Unix(0, 0)
	s := New(Config{RatePerSec: 1, Burst: 2, now: func() time.Time { return clock }})
	s.Update(testSnapshot(time.Minute))

	hit := func(addr string) int {
		req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
		req.RemoteAddr = addr
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w.Code
	}

	// Burst of 2, then throttled.
	if hit("192.0.2.1:1") != 200 || hit("192.0.2.1:2") != 200 {
		t.Fatal("burst rejected")
	}
	if code := hit("192.0.2.1:3"); code != http.StatusTooManyRequests {
		t.Fatalf("third request: %d", code)
	}
	// A different client has its own bucket.
	if code := hit("192.0.2.2:1"); code != 200 {
		t.Fatalf("other client throttled: %d", code)
	}
	// Refill after a second admits one more.
	clock = clock.Add(time.Second)
	if code := hit("192.0.2.1:4"); code != 200 {
		t.Fatalf("post-refill: %d", code)
	}
	if s.Stats()["api-throttled"] != 1 {
		t.Fatalf("throttled counter: %v", s.Stats())
	}
}

func TestRateLimitTableBounded(t *testing.T) {
	clock := time.Unix(0, 0)
	s := New(Config{MaxClients: 4, now: func() time.Time { return clock }})
	s.Update(testSnapshot(time.Minute))
	for i := 0; i < 100; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
		req.RemoteAddr = fmt.Sprintf("192.0.2.%d:1", i+1)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}
	s.mu.Lock()
	n := len(s.buckets)
	s.mu.Unlock()
	if n > 4 {
		t.Fatalf("bucket table grew to %d entries", n)
	}
}

// TestRateLimitThrottledSurvivesEviction is the regression test for
// the burst-bypass bug: the old limiter reset the whole bucket table
// whenever it hit MaxClients, so any address spray handed every
// throttled client a fresh full bucket. Now a spray must not launder
// an existing client's debt.
func TestRateLimitThrottledSurvivesEviction(t *testing.T) {
	clock := time.Unix(0, 0)
	s := New(Config{RatePerSec: 1, Burst: 2, MaxClients: 3, now: func() time.Time { return clock }})
	s.Update(testSnapshot(time.Minute))

	hit := func(addr string) int {
		req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
		req.RemoteAddr = addr + ":1"
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w.Code
	}

	// Client A exhausts its burst and is throttled.
	if hit("192.0.2.1") != 200 || hit("192.0.2.1") != 200 {
		t.Fatal("burst rejected")
	}
	if code := hit("192.0.2.1"); code != http.StatusTooManyRequests {
		t.Fatalf("throttled request: %d", code)
	}

	// An address spray fills (and overflows) the table while every
	// bucket is live — nothing is evictable, so newcomers fail closed…
	for i := 0; i < 20; i++ {
		hit(fmt.Sprintf("198.51.100.%d", i+1))
	}
	// …and client A is STILL throttled: its bucket must have survived.
	if code := hit("192.0.2.1"); code != http.StatusTooManyRequests {
		t.Fatalf("throttled client laundered its debt through the spray: %d", code)
	}
	s.mu.Lock()
	n := len(s.buckets)
	s.mu.Unlock()
	if n > 3 {
		t.Fatalf("bucket table grew to %d entries", n)
	}

	// After a full refill interval (Burst/Rate = 2s) idle spray buckets
	// are evictable, so a genuinely new client gets in — and client A,
	// fully refilled, is indistinguishable from fresh.
	clock = clock.Add(2 * time.Second)
	if code := hit("203.0.113.9"); code != 200 {
		t.Fatalf("new client after idle eviction: %d", code)
	}
	if code := hit("192.0.2.1"); code != 200 {
		t.Fatalf("refilled client: %d", code)
	}
}

// TestRateLimitFailsClosedUnderSpray pins the full-table behavior:
// when no bucket is idle enough to evict, unknown clients are refused
// rather than granted an untracked free request.
func TestRateLimitFailsClosedUnderSpray(t *testing.T) {
	clock := time.Unix(0, 0)
	s := New(Config{RatePerSec: 1, Burst: 2, MaxClients: 2, now: func() time.Time { return clock }})
	if !s.allow("a") || !s.allow("b") {
		t.Fatal("table fill rejected")
	}
	if s.allow("c") {
		t.Fatal("newcomer admitted with a full table of live buckets")
	}
	// Existing clients keep being served from their own buckets.
	if !s.allow("a") {
		t.Fatal("existing client refused")
	}
	// Once the table's buckets have fully refilled, eviction frees a
	// slot and the newcomer mints a bucket.
	clock = clock.Add(2 * time.Second)
	if !s.allow("c") {
		t.Fatal("newcomer refused after idle eviction")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buckets) > 2 {
		t.Fatalf("table holds %d buckets", len(s.buckets))
	}
}

func TestAdmissionShedsWhenFull(t *testing.T) {
	s := New(Config{MaxInFlight: 2})
	s.Update(testSnapshot(time.Minute))

	// Occupy both admission slots as if two requests were in flight.
	s.admit <- struct{}{}
	s.admit <- struct{}{}
	w := get(t, s, "/v1/stats", nil)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("saturated: %d", w.Code)
	}
	if s.Stats()["api-rejected"] != 1 {
		t.Fatalf("rejected counter: %v", s.Stats())
	}
	<-s.admit
	if w = get(t, s, "/v1/stats", nil); w.Code != http.StatusOK {
		t.Fatalf("after drain: %d", w.Code)
	}
}

// TestConcurrentClientsOverTCP exercises the real listener under
// parallel load with revalidation and concurrent view swaps: every
// response must be 200 or 304 with a well-formed body.
func TestConcurrentClientsOverTCP(t *testing.T) {
	s := New(Config{RatePerSec: 100000, Burst: 100000})
	s.Update(testSnapshot(time.Minute))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	stop := make(chan struct{})
	go func() { // concurrent view churn while clients read
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.Update(testSnapshot(time.Duration(i) * time.Second))
			}
		}
	}()

	const clients = 40
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			etag := ""
			for j := 0; j < 20; j++ {
				req, _ := http.NewRequest(http.MethodGet, base+"/v1/incidents", nil)
				if etag != "" {
					req.Header.Set("If-None-Match", etag)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var v map[string]any
					if err := json.Unmarshal(body, &v); err != nil {
						errs <- fmt.Errorf("bad body: %v", err)
						return
					}
					etag = resp.Header.Get("ETag")
				case http.StatusNotModified:
				default:
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
