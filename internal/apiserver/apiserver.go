// Package apiserver is the operator query plane over a running
// SkeletonHunter deployment: a stdlib net/http read-only API serving
// incidents, alarms, the component blacklist, and self-monitoring
// stats as JSON.
//
// The serving model is snapshot-immutable: the deployment (on its
// engine goroutine) periodically renders the monitoring state into a
// set of pre-marshaled JSON resources and swaps them in atomically;
// request handlers only ever read the current immutable view. That
// keeps handlers allocation-light and completely free of locks against
// the simulation — the shape that survives "heavy traffic from
// millions of users" — and it makes HTTP caching exact: a resource's
// ETag is a digest of its bytes, so If-None-Match revalidation returns
// 304 precisely until the monitoring state actually changes.
//
// Publishing is *delta-rendered*: each Update compares the snapshot
// against what the previous view already rendered — per-incident
// change revisions (incident.Incident.Rev), an append-only alarm
// stamp, an elementwise blacklist compare — and re-marshals only what
// changed, stitching the incident list from per-incident pre-marshaled
// fragments reused across epochs. A 32K-entry blacklist or a long
// incident table therefore costs nothing to republish until it
// actually changes. Updates that change anything (stats excluded; see
// below) mint a new monotonically increasing *epoch*, and the change
// set is retained in a bounded ring so clients can follow the plane
// via the resumable /v1/watch surface (long-poll or SSE) instead of
// polling — see watch.go.
//
// Self-protection mirrors the controller's transport server: a bounded
// concurrent-request admission gate (503 + Retry-After when full), a
// per-client token-bucket rate limiter (429) with idle-eviction
// bounding the client table, and a capped watcher registry with
// counted shedding and fell-behind eviction for the watch surface.
package apiserver

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skeletonhunter/internal/analyzer"
	"skeletonhunter/internal/component"
	"skeletonhunter/internal/incident"
	"skeletonhunter/internal/obs"
)

// Config tunes the server's self-protection. Zero values take the
// defaults.
type Config struct {
	// RatePerSec is each client's sustained request budget (default
	// 50/s) and Burst its bucket depth (default 100).
	RatePerSec float64
	Burst      float64
	// MaxInFlight bounds concurrently admitted requests (default 128).
	MaxInFlight int
	// MaxClients bounds the rate-limiter table; when it fills, buckets
	// idle long enough to have refilled completely are evicted —
	// never live (possibly throttled) ones (default 4096).
	MaxClients int
	// MaxWatchers bounds concurrently registered watch clients —
	// blocked long-pollers plus open SSE streams; excess watch
	// requests are shed with 503 (default 1024).
	MaxWatchers int
	// WatchBacklog is how many epochs of change events are retained
	// for resumable watches; a cursor older than the backlog gets
	// 410 Gone and must resync from the full resources (default 512).
	WatchBacklog int
	// MaxPollWait caps the long-poll wait_ms parameter (default 30s).
	MaxPollWait time.Duration
	// DisableDeltas forces every Update to re-marshal every resource
	// wholesale — the pre-delta baseline, kept so the delta renderer
	// can be benchmarked (and equivalence-tested) against it.
	DisableDeltas bool

	// now overrides the rate limiter's clock (tests).
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.RatePerSec == 0 {
		c.RatePerSec = 50
	}
	if c.Burst == 0 {
		c.Burst = 100
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 128
	}
	if c.MaxClients == 0 {
		c.MaxClients = 4096
	}
	if c.MaxWatchers == 0 {
		c.MaxWatchers = 1024
	}
	if c.WatchBacklog <= 0 {
		c.WatchBacklog = 512
	}
	if c.MaxPollWait == 0 {
		c.MaxPollWait = 30 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// BlacklistEntry is one blacklisted component in the /v1/blacklist
// response.
type BlacklistEntry struct {
	Component component.ID `json:"component"`
	Class     string       `json:"class"`
	SinceSec  float64      `json:"since_s"`
}

// Snapshot is the monitoring state the deployment renders into a view.
// All fields are copies owned by the snapshot (the server never
// mutates them, so callers may hand the same slices to consecutive
// Updates).
//
// Delta contract: incidents are identified by ID and carry a change
// revision (Incident.Rev) that is bumped on every mutation — an
// incident whose (ID, Rev) pair matches the previous Update is served
// from the previous rendering without re-marshaling. Rev zero means
// "no tracking" and always re-renders. Alarms are append-only between
// Updates; the blacklist is compared elementwise.
type Snapshot struct {
	Now       time.Duration
	Incidents []incident.Incident
	Alarms    []analyzer.Alarm
	Blacklist []BlacklistEntry
	Stats     obs.Snapshot
}

// resource is one pre-marshaled endpoint body.
type resource struct {
	body []byte
	etag string
}

// view is one immutable generation of every served resource.
type view struct {
	epoch     uint64
	resources map[string]resource // fixed paths
	incidents map[string]resource // /v1/incidents/{id}
}

// incFrag is the cached rendering of one incident at one revision:
// its list-summary JSON fragment (indented for in-place stitching
// into the /v1/incidents body). The detail resource is reused from
// the previous view directly.
type incFrag struct {
	rev     uint64
	summary []byte
}

// Server is the HTTP read plane. Construct with New, feed with Update,
// serve via Start or use it directly as an http.Handler.
type Server struct {
	cfg  Config
	view atomic.Pointer[view]

	admit chan struct{}

	mu      sync.Mutex
	buckets map[string]*bucket

	// Publisher state: owned by Update's caller (the deployment's
	// engine goroutine — Update is single-writer by contract).
	epoch     atomic.Uint64
	frags     map[string]incFrag
	listIDs   []string // incident order the published list was stitched in
	blacklist []BlacklistEntry
	alarmLen  int
	alarmLast time.Duration

	hub watchHub

	requests     atomic.Uint64
	notModified  atomic.Uint64
	throttled    atomic.Uint64
	rejected     atomic.Uint64
	watchReqs    atomic.Uint64
	watchEvents  atomic.Uint64
	watchShed    atomic.Uint64
	watchEvicted atomic.Uint64
	watchResyncs atomic.Uint64

	ln   net.Listener
	http *http.Server
}

// New builds a server with no view yet; requests 503 until the first
// Update.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		admit:   make(chan struct{}, cfg.MaxInFlight),
		buckets: make(map[string]*bucket),
		frags:   make(map[string]incFrag),
	}
	s.hub.init(cfg.WatchBacklog)
	return s
}

// incidentView is the JSON shape of one incident. Durations serialize
// as seconds: operators read curl output, not nanosecond integers.
type incidentView struct {
	ID             string       `json:"id"`
	Component      component.ID `json:"component"`
	Class          string       `json:"class"`
	Severity       string       `json:"severity"`
	State          string       `json:"state"`
	OpenedSec      float64      `json:"opened_s"`
	MitigatedSec   float64      `json:"mitigated_s,omitempty"`
	ResolvedSec    float64      `json:"resolved_s,omitempty"`
	LastAlarmSec   float64      `json:"last_alarm_s"`
	TimeToDetect   float64      `json:"time_to_detect_s"`
	TimeToMitigate float64      `json:"time_to_mitigate_s,omitempty"`
	RepairedSec    float64      `json:"repaired_s,omitempty"`
	TimeToRepair   float64      `json:"time_to_repair_s,omitempty"`
	Mitigation     string       `json:"mitigation,omitempty"`
	AlarmCount     int          `json:"alarm_count"`
	Reopens        int          `json:"reopens"`
	// Gray marks an incident opened by the correlate layer's
	// change-point detector: sub-threshold evidence, page-only policy.
	Gray        bool     `json:"gray,omitempty"`
	Chains      []string `json:"chains,omitempty"`
	Remediation []string `json:"remediation,omitempty"`
}

// incidentDetail adds the evidence bundle to the detail endpoint.
type incidentDetail struct {
	incidentView
	Evidence evidenceView `json:"evidence"`
}

type evidenceView struct {
	GatheredSec  float64      `json:"gathered_s"`
	TotalRecords int          `json:"total_records"`
	Records      []recordView `json:"records,omitempty"`
	Queues       []queueView  `json:"queues,omitempty"`
	Offload      *offloadView `json:"offload,omitempty"`
	Verdicts     []string     `json:"verdicts,omitempty"`
}

type recordView struct {
	Task  string  `json:"task"`
	Src   string  `json:"src"`
	Dst   string  `json:"dst"`
	AtSec float64 `json:"at_s"`
	RTTUs float64 `json:"rtt_us"`
	Lost  bool    `json:"lost"`
	Hops  int     `json:"path_hops"`
}

type queueView struct {
	Node  string  `json:"node"`
	Depth float64 `json:"depth_pkts"`
}

type offloadView struct {
	Host         int `json:"host"`
	Rail         int `json:"rail"`
	Inconsistent int `json:"inconsistent_entries"`
	NotOffloaded int `json:"not_offloaded_entries"`
	Total        int `json:"total_entries"`
}

type alarmView struct {
	AtSec     float64       `json:"at_s"`
	Anomalies int           `json:"anomalies"`
	Verdicts  []verdictView `json:"verdicts"`
}

type verdictView struct {
	Layer      string         `json:"layer"`
	Detail     string         `json:"detail"`
	Components []component.ID `json:"components"`
	Pairs      int            `json:"pairs"`
}

func seconds(d time.Duration) float64 { return d.Seconds() }

func toIncidentView(in incident.Incident) incidentView {
	return incidentView{
		ID:             in.ID,
		Component:      in.Component,
		Class:          in.Class.String(),
		Severity:       in.Severity.String(),
		State:          in.State.String(),
		OpenedSec:      seconds(in.OpenedAt),
		MitigatedSec:   seconds(in.MitigatedAt),
		ResolvedSec:    seconds(in.ResolvedAt),
		LastAlarmSec:   seconds(in.LastAlarmAt),
		TimeToDetect:   seconds(in.TimeToDetect),
		TimeToMitigate: seconds(in.TimeToMitigate),
		RepairedSec:    seconds(in.RepairedAt),
		TimeToRepair:   seconds(in.TimeToRepair),
		Mitigation:     in.Mitigation,
		AlarmCount:     in.AlarmCount,
		Reopens:        in.Reopens,
		Gray:           in.Gray,
		Chains:         in.Evidence.Chains,
		Remediation:    in.Evidence.Remediation,
	}
}

func toDetail(in incident.Incident) incidentDetail {
	ev := evidenceView{
		GatheredSec:  seconds(in.Evidence.GatheredAt),
		TotalRecords: in.Evidence.TotalRecords,
		Verdicts:     in.Evidence.Verdicts,
	}
	for _, r := range in.Evidence.Records {
		ev.Records = append(ev.Records, recordView{
			Task:  string(r.Task),
			Src:   fmt.Sprintf("c%d/r%d", r.SrcContainer, r.SrcRail),
			Dst:   fmt.Sprintf("c%d/r%d", r.DstContainer, r.DstRail),
			AtSec: seconds(r.At),
			RTTUs: float64(r.RTT) / float64(time.Microsecond),
			Lost:  r.Lost,
			Hops:  len(r.Path),
		})
	}
	for _, q := range in.Evidence.Queues {
		ev.Queues = append(ev.Queues, queueView{Node: string(q.Node), Depth: q.Depth})
	}
	if od := in.Evidence.Offload; od != nil {
		ev.Offload = &offloadView{
			Host: od.Host, Rail: od.Rail,
			Inconsistent: len(od.Inconsistent), NotOffloaded: len(od.NotOffloaded),
			Total: od.Total,
		}
	}
	return incidentDetail{incidentView: toIncidentView(in), Evidence: ev}
}

// mustResource marshals a body and stamps its ETag. Marshaling the
// view types cannot fail (no channels/funcs/cycles), so errors are
// programming bugs and panic.
func mustResource(v any) resource {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("apiserver: marshal: %v", err))
	}
	return finishResource(append(b, '\n'))
}

// finishResource stamps a fully rendered body with its ETag.
func finishResource(body []byte) resource {
	sum := sha256.Sum256(body)
	return resource{body: body, etag: `"` + hex.EncodeToString(sum[:8]) + `"`}
}

// summaryFragment renders one incident's list entry indented for
// stitching into the /v1/incidents array (two levels deep), matching
// json.MarshalIndent of the whole list byte for byte.
func summaryFragment(in incident.Incident) []byte {
	b, err := json.MarshalIndent(toIncidentView(in), "    ", "  ")
	if err != nil {
		panic(fmt.Sprintf("apiserver: marshal: %v", err))
	}
	return b
}

// detailResource renders one incident's /v1/incidents/{id} body.
func detailResource(in incident.Incident, now time.Duration) resource {
	return mustResource(map[string]any{
		"now_s":    seconds(now),
		"incident": toDetail(in),
	})
}

// stitchList assembles the /v1/incidents body from per-incident
// summary fragments — no per-incident re-marshaling. The output is
// byte-identical to mustResource over the equivalent map, which the
// equivalence test pins.
func stitchList(frags [][]byte, now time.Duration) resource {
	nowJSON, _ := json.Marshal(seconds(now))
	var buf bytes.Buffer
	buf.WriteString("{\n  \"incidents\": [")
	for i, f := range frags {
		if i > 0 {
			buf.WriteString(",")
		}
		buf.WriteString("\n    ")
		buf.Write(f)
	}
	if len(frags) > 0 {
		buf.WriteString("\n  ")
	}
	buf.WriteString("],\n  \"now_s\": ")
	buf.Write(nowJSON)
	buf.WriteString("\n}\n")
	return finishResource(buf.Bytes())
}

// Update renders a snapshot into a fresh immutable view and swaps it
// in; handlers pick the new view up on their next request. Called from
// the deployment's engine goroutine — Update is single-writer (the
// delta caches are unguarded publisher state).
//
// Only resources whose content actually changed are re-marshaled (see
// the Snapshot delta contract); if anything changed, the server's
// epoch advances and the change set is published to the watch ring.
// The stats resource re-renders every Update but never participates
// in epochs or watch events: serving counters move on every request,
// and a watch surface that woke on its own traffic would spin.
func (s *Server) Update(snap Snapshot) {
	prev := s.view.Load()
	wholesale := prev == nil || s.cfg.DisableDeltas

	v := &view{
		resources: make(map[string]resource, 5),
		incidents: make(map[string]resource, len(snap.Incidents)),
	}
	var changed []string

	// Incidents: reuse the previous rendering for every (ID, Rev)
	// pair already published; stitch the list from cached fragments.
	frags := make([][]byte, 0, len(snap.Incidents))
	ids := make([]string, 0, len(snap.Incidents))
	listDirty := wholesale
	for _, in := range snap.Incidents {
		ids = append(ids, in.ID)
		f, haveFrag := s.frags[in.ID]
		prevDet, havePrev := resource{}, false
		if prev != nil {
			prevDet, havePrev = prev.incidents[in.ID]
		}
		if !wholesale && in.Rev != 0 && haveFrag && f.rev == in.Rev && havePrev {
			v.incidents[in.ID] = prevDet
			frags = append(frags, f.summary)
			continue
		}
		frag := summaryFragment(in)
		v.incidents[in.ID] = detailResource(in, snap.Now)
		s.frags[in.ID] = incFrag{rev: in.Rev, summary: frag}
		frags = append(frags, frag)
		changed = append(changed, "/v1/incidents/"+in.ID)
		listDirty = true
	}
	if !listDirty && !sameIDs(ids, s.listIDs) {
		listDirty = true
	}
	if listDirty {
		v.resources["/v1/incidents"] = stitchList(frags, snap.Now)
		changed = append(changed, "/v1/incidents")
	} else {
		v.resources["/v1/incidents"] = prev.resources["/v1/incidents"]
	}
	s.listIDs = ids

	// Alarms: append-only between Updates, so (count, last-At) pins
	// the content.
	var alarmLast time.Duration
	if n := len(snap.Alarms); n > 0 {
		alarmLast = snap.Alarms[n-1].At
	}
	if wholesale || len(snap.Alarms) != s.alarmLen || alarmLast != s.alarmLast {
		alarms := make([]alarmView, 0, len(snap.Alarms))
		for _, al := range snap.Alarms {
			av := alarmView{AtSec: seconds(al.At), Anomalies: len(al.Anomalies)}
			for _, vd := range al.Verdicts {
				av.Verdicts = append(av.Verdicts, verdictView{
					Layer: vd.Layer.String(), Detail: vd.Detail,
					Components: vd.Components, Pairs: vd.Pairs,
				})
			}
			alarms = append(alarms, av)
		}
		v.resources["/v1/alarms"] = mustResource(map[string]any{
			"now_s":  seconds(snap.Now),
			"alarms": alarms,
		})
		changed = append(changed, "/v1/alarms")
		s.alarmLen, s.alarmLast = len(snap.Alarms), alarmLast
	} else {
		v.resources["/v1/alarms"] = prev.resources["/v1/alarms"]
	}

	// Blacklist: compared elementwise — entries are tiny comparable
	// structs, and the compare is what spares re-marshaling 32K of
	// them every round.
	if wholesale || !blacklistEqual(snap.Blacklist, s.blacklist) {
		v.resources["/v1/blacklist"] = mustResource(map[string]any{
			"now_s":     seconds(snap.Now),
			"blacklist": snap.Blacklist,
		})
		changed = append(changed, "/v1/blacklist")
		s.blacklist = append(s.blacklist[:0], snap.Blacklist...)
	} else {
		v.resources["/v1/blacklist"] = prev.resources["/v1/blacklist"]
	}

	// Stats: always re-rendered, never epoch-relevant.
	v.resources["/v1/stats"] = mustResource(map[string]any{
		"now_s":    seconds(snap.Now),
		"counters": snap.Stats.Counters,
	})

	if len(changed) > 0 || prev == nil {
		epoch := s.epoch.Add(1)
		v.epoch = epoch
		s.view.Store(v)
		s.hub.publish(renderEvent(epoch, snap.Now, changed, v))
	} else {
		v.epoch = prev.epoch
		s.view.Store(v)
	}
}

// sameIDs reports whether two incident orderings are identical.
func sameIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func blacklistEqual(a, b []BlacklistEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ServeHTTP implements the read API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		jsonError(w, http.StatusMethodNotAllowed, "read-only API: GET/HEAD only")
		return
	}

	path := strings.TrimSuffix(r.URL.Path, "/")

	// The watch surface has its own self-protection (the bounded
	// watcher registry) and can legitimately hold a request open for
	// the whole long-poll wait — it must not pin admission slots the
	// fast resource gets need.
	if path == "/v1/watch" {
		if !s.allow(clientKey(r)) {
			s.throttled.Add(1)
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusTooManyRequests, "client rate limit exceeded")
			return
		}
		s.serveWatch(w, r)
		return
	}

	// Admission: bounded concurrency, shed immediately when full.
	select {
	case s.admit <- struct{}{}:
		defer func() { <-s.admit }()
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusServiceUnavailable, "server at concurrent-request capacity")
		return
	}

	if !s.allow(clientKey(r)) {
		s.throttled.Add(1)
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusTooManyRequests, "client rate limit exceeded")
		return
	}

	v := s.view.Load()
	if v == nil {
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusServiceUnavailable, "no snapshot published yet")
		return
	}

	res, ok := v.resources[path]
	if !ok {
		if id, found := strings.CutPrefix(path, "/v1/incidents/"); found {
			res, ok = v.incidents[id]
		}
	}
	if !ok {
		jsonError(w, http.StatusNotFound, "unknown resource")
		return
	}

	w.Header().Set("ETag", res.etag)
	w.Header().Set("Cache-Control", "no-cache") // revalidate, don't assume fresh
	w.Header().Set("X-Epoch", strconv.FormatUint(v.epoch, 10))
	if etagMatches(r.Header.Get("If-None-Match"), res.etag) {
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Set explicitly so HEAD responses size the body they elide; for
	// GET it matches the single Write below exactly.
	w.Header().Set("Content-Length", strconv.Itoa(len(res.body)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(res.body)
}

// etagMatches implements If-None-Match for strong ETags: "*", or any
// member of the (possibly weak-prefixed) candidate list equal to the
// resource's tag.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// clientKey identifies a client for rate limiting: the connection's
// source IP (ports vary per connection; one client is one host).
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\": %q}\n", msg)
}

// Start listens on addr ("host:0" picks a free port) and serves until
// Close. The listener address is available via Addr.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.http = &http.Server{Handler: s, ReadHeaderTimeout: 5 * time.Second}
	go s.http.Serve(ln)
	return nil
}

// Addr returns the listening address (empty before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

// Epoch returns the current incident-plane epoch (0 before the first
// Update).
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// Stats reports the server's own serving counters.
func (s *Server) Stats() map[string]uint64 {
	return map[string]uint64{
		"api-requests":      s.requests.Load(),
		"api-not-modified":  s.notModified.Load(),
		"api-throttled":     s.throttled.Load(),
		"api-rejected":      s.rejected.Load(),
		"api-epoch":         s.epoch.Load(),
		"api-watch-reqs":    s.watchReqs.Load(),
		"api-watch-events":  s.watchEvents.Load(),
		"api-watch-shed":    s.watchShed.Load(),
		"api-watch-evicted": s.watchEvicted.Load(),
		"api-watch-resyncs": s.watchResyncs.Load(),
	}
}
