package trace

import (
	"math/rand"
	"testing"
	"time"
)

func samples(n int, f func(*rand.Rand) time.Duration) []time.Duration {
	r := rand.New(rand.NewSource(1))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = f(r)
	}
	return out
}

func TestLifetimeShapesFig2(t *testing.T) {
	// ≈50 % of small-task containers die within 60 min; ~70 % of all
	// containers within 100 min; larger tasks shift right.
	small := samples(20000, func(r *rand.Rand) time.Duration { return Lifetime(r, SizeSmall) })
	large := samples(20000, func(r *rand.Rand) time.Duration { return Lifetime(r, SizeLarge) })

	cdfS := CDF(small, []time.Duration{60 * time.Minute, 100 * time.Minute})
	cdfL := CDF(large, []time.Duration{60 * time.Minute})
	if cdfS[0] < 0.42 || cdfS[0] > 0.60 {
		t.Fatalf("P(small ≤ 60min) = %v, want ≈0.5", cdfS[0])
	}
	if cdfS[1] < 0.60 {
		t.Fatalf("P(small ≤ 100min) = %v, want ≥0.6", cdfS[1])
	}
	if cdfL[0] >= cdfS[0] {
		t.Fatalf("large tasks not longer-lived: %v vs %v", cdfL[0], cdfS[0])
	}
}

func TestLifetimeByConfigFig3(t *testing.T) {
	low := samples(20000, func(r *rand.Rand) time.Duration { return LifetimeByConfig(r, ConfigLowEnd) })
	high := samples(20000, func(r *rand.Rand) time.Duration { return LifetimeByConfig(r, ConfigHighEnd) })
	cl := CDF(low, []time.Duration{60 * time.Minute})[0]
	ch := CDF(high, []time.Duration{60 * time.Minute})[0]
	if cl <= ch {
		t.Fatalf("low-end containers should die younger: %v vs %v", cl, ch)
	}
	if cl < 0.5 {
		t.Fatalf("P(low-end ≤ 60min) = %v, want majority short-lived", cl)
	}
}

func TestStartupTimesFig4(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	st := StartupTimes(r, 512)
	if len(st) != 512 {
		t.Fatalf("startup times = %d", len(st))
	}
	// Sorted ascending, phased: the 480th container starts much later
	// than the 32nd (waves), and the minimum respects the floor.
	for i := 1; i < len(st); i++ {
		if st[i] < st[i-1] {
			t.Fatal("startup times not sorted")
		}
	}
	if st[0] < 20*time.Second {
		t.Fatalf("first startup %v below floor", st[0])
	}
	if st[480] < st[32]+2*time.Minute {
		t.Fatalf("no phased pattern: c32=%v c480=%v", st[32], st[480])
	}
	// Tail reaches minutes; with stragglers it can approach ~10 min.
	if st[len(st)-1] < 5*time.Minute {
		t.Fatalf("tail startup = %v, want multi-minute", st[len(st)-1])
	}
	// Larger tasks bear a longer tail than small ones.
	small := StartupTimes(rand.New(rand.NewSource(3)), 32)
	if st[len(st)-1] <= small[len(small)-1] {
		t.Fatal("large task tail not beyond small task tail")
	}
}

func TestRNICsPerContainerFig5(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	counts := map[int]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		v := RNICsPerContainer(r)
		counts[v]++
		switch v {
		case 1, 2, 4, 8:
		default:
			t.Fatalf("invalid RNIC count %d", v)
		}
	}
	if counts[8] <= counts[4] || counts[4] <= counts[2] {
		t.Fatalf("ordering wrong: %v", counts)
	}
	if f := float64(counts[8]) / n; f < 0.6 || f > 0.75 {
		t.Fatalf("P(8 RNICs) = %v, want ≈0.68", f)
	}
}

func TestFlowTableItemsFig6(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const n = 100000
	var sum, max int
	for i := 0; i < n; i++ {
		v := FlowTableItems(r)
		if v < 1 || v > 9300 {
			t.Fatalf("flow table items out of range: %d", v)
		}
		sum += v
		if v > max {
			max = v
		}
	}
	mean := float64(sum) / n
	if mean < 40 {
		t.Fatalf("mean flow-table items = %v, want > 40", mean)
	}
	if max < 2000 {
		t.Fatalf("max flow-table items = %d, want a heavy tail", max)
	}
}

func TestJobGPUsFig12(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	counts := map[int]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		v := JobGPUs(r)
		if v%8 != 0 {
			t.Fatalf("job GPUs %d not a multiple of 8", v)
		}
		counts[v]++
	}
	// 128, 512 and 1024 dominate.
	for _, big := range []int{128, 512, 1024} {
		for _, small := range []int{8, 16, 2048} {
			if counts[big] <= counts[small] {
				t.Fatalf("counts[%d]=%d not above counts[%d]=%d", big, counts[big], small, counts[small])
			}
		}
	}
}

func TestCDFAndHistogram(t *testing.T) {
	s := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	cdf := CDF(s, []time.Duration{2 * time.Second, 10 * time.Second, 0})
	if cdf[0] != 0.5 || cdf[1] != 1 || cdf[2] != 0 {
		t.Fatalf("cdf = %v", cdf)
	}
	h := Histogram([]int{1, 5, 10, 100}, []int{4, 9})
	if h[0] != 1 || h[1] != 1 || h[2] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}
