// Package trace models the production workload distributions of §3.1
// and §5.1 (Figs. 2–6 and 12): container lifetimes skewed short and
// conditioned on task size and hardware configuration, phased container
// startup with multi-minute tails, RNIC-per-container allocation
// concentrated at 8 and 4, per-host flow-table populations with a heavy
// tail, and job GPU counts concentrated at multiples of eight.
//
// The generators are deterministic under a seed and are the workload
// source for the motivation-figure benchmarks and for campaign-scale
// simulations.
package trace

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// SizeClass buckets training tasks by container count, mirroring the
// legend of Fig. 2.
type SizeClass int

const (
	SizeSmall  SizeClass = iota // ≤ 256 containers
	SizeMedium                  // ≤ 1K
	SizeLarge                   // > 1K
)

func (s SizeClass) String() string {
	switch s {
	case SizeSmall:
		return "size≤256"
	case SizeMedium:
		return "size≤1K"
	default:
		return "size>1K"
	}
}

// ConfigClass buckets containers by hardware configuration (Fig. 3):
// lower-end configurations are used for debugging and die young.
type ConfigClass int

const (
	ConfigLowEnd ConfigClass = iota // debugging/testing boxes
	ConfigMidEnd
	ConfigHighEnd // production training boxes
)

func (c ConfigClass) String() string {
	switch c {
	case ConfigLowEnd:
		return "low-end"
	case ConfigMidEnd:
		return "mid-end"
	default:
		return "high-end"
	}
}

// Lifetime draws a container lifetime conditioned on task size
// (Fig. 2): small tasks skew short (≈50 % under 60 min), and ~70 % of
// all containers live under 100 min. The model is a lognormal whose
// median grows with task size.
func Lifetime(r *rand.Rand, size SizeClass) time.Duration {
	var medianMin, sigma float64
	switch size {
	case SizeSmall:
		medianMin, sigma = 58, 1.1
	case SizeMedium:
		medianMin, sigma = 75, 1.0
	default:
		medianMin, sigma = 95, 0.9
	}
	m := medianMin * math.Exp(sigma*r.NormFloat64())
	if m < 1 {
		m = 1
	}
	return time.Duration(m * float64(time.Minute))
}

// LifetimeByConfig draws a lifetime conditioned on hardware class
// (Fig. 3): higher-end configurations run longer.
func LifetimeByConfig(r *rand.Rand, cfg ConfigClass) time.Duration {
	var medianMin, sigma float64
	switch cfg {
	case ConfigLowEnd:
		medianMin, sigma = 35, 1.2
	case ConfigMidEnd:
		medianMin, sigma = 70, 1.0
	default:
		medianMin, sigma = 130, 0.9
	}
	m := medianMin * math.Exp(sigma*r.NormFloat64())
	if m < 1 {
		m = 1
	}
	return time.Duration(m * float64(time.Minute))
}

// StartupTimes draws the creation-to-running delay of every container
// in a task (Fig. 4): waves of ~32 containers spaced tens of seconds
// apart, exponential jitter, and a tail that stretches to ~10 minutes
// on large tasks.
func StartupTimes(r *rand.Rand, containers int) []time.Duration {
	out := make([]time.Duration, containers)
	for i := range out {
		wave := time.Duration(i/32) * 25 * time.Second
		jitter := time.Duration(r.ExpFloat64() * float64(12*time.Second))
		straggler := time.Duration(0)
		if r.Float64() < 0.02 { // occasional image-pull/cache-miss straggler
			straggler = time.Duration(r.ExpFloat64() * float64(3*time.Minute))
		}
		out[i] = 20*time.Second + wave + jitter + straggler
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RNICsPerContainer draws the number of RNICs bound to a container
// (Fig. 5): dominated by 8, then 4, with a small tail of 1/2-RNIC
// debug containers.
func RNICsPerContainer(r *rand.Rand) int {
	p := r.Float64()
	switch {
	case p < 0.68:
		return 8
	case p < 0.90:
		return 4
	case p < 0.95:
		return 2
	default:
		return 1
	}
}

// FlowTableItems draws a host's flow-table population (Fig. 6): most
// hosts carry tens of entries, the mean is >40, and a heavy tail
// reaches ~9.3K on hosts packed with many-tenant endpoints.
func FlowTableItems(r *rand.Rand) int {
	// Lognormal body with median ~32…
	n := int(32 * math.Exp(0.8*r.NormFloat64()))
	// …plus a rare multi-tenant pileup tail.
	if r.Float64() < 0.01 {
		n += int(r.ExpFloat64() * 1500)
	}
	if n < 1 {
		n = 1
	}
	if n > 9300 {
		n = 9300
	}
	return n
}

// JobGPUs draws a training job's GPU count (Fig. 12): concentrated on
// powers-of-two multiples of 8 — 128, 512 and 1024 dominate.
func JobGPUs(r *rand.Rand) int {
	p := r.Float64()
	switch {
	case p < 0.08:
		return 8
	case p < 0.16:
		return 16
	case p < 0.26:
		return 32
	case p < 0.34:
		return 64
	case p < 0.55:
		return 128
	case p < 0.66:
		return 256
	case p < 0.85:
		return 512
	case p < 0.97:
		return 1024
	default:
		return 2048
	}
}

// CDF computes the empirical CDF of durations at the given probe
// points, returning P(X ≤ p) for each.
func CDF(samples []time.Duration, points []time.Duration) []float64 {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := make([]float64, len(points))
	for i, p := range points {
		idx := sort.Search(len(s), func(j int) bool { return s[j] > p })
		out[i] = float64(idx) / float64(len(s))
	}
	return out
}

// Histogram counts integer samples into the given bucket upper bounds
// (inclusive); the final bucket catches everything larger.
func Histogram(samples []int, bounds []int) []int {
	counts := make([]int, len(bounds)+1)
	for _, v := range samples {
		placed := false
		for i, b := range bounds {
			if v <= b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(bounds)]++
		}
	}
	return counts
}
