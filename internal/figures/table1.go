package figures

import (
	"fmt"
	"strings"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/detect"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/hunter"
	"skeletonhunter/internal/metrics"
	"skeletonhunter/internal/topology"
)

// Table1Row is the outcome of injecting one Table-1 issue type.
type Table1Row struct {
	Issue     faults.Info
	Detected  bool
	Localized bool
	// ObservedSymptoms are the anomaly types the detector raised.
	ObservedSymptoms []string
	DetectionLatency time.Duration
}

// Table1 is the full issue-catalog reproduction.
type Table1 struct {
	Rows []Table1Row
}

// table1Target picks the injection target for an issue type on a
// steady 4-container deployment.
func table1Target(d *hunter.Deployment, task *cluster.Task, t faults.IssueType) faults.Target {
	a := task.Containers[0].Addrs[2]
	nic := topology.NIC{Host: a.Host, Rail: a.Rail}
	link := topology.MakeLinkID(nic.ID(), d.Fabric.ToR(0, a.Rail))
	switch t {
	case faults.CRCError, faults.SwitchPortDown, faults.SwitchPortFlapping:
		return faults.Target{Link: link}
	case faults.SwitchOffline, faults.CongestionControlIssue:
		return faults.Target{Switch: d.Fabric.ToR(0, a.Rail)}
	case faults.RNICHardwareFailure, faults.RNICFirmwareNotResponding,
		faults.RNICPortDown, faults.RNICPortFlapping, faults.BondError:
		return faults.Target{Host: a.Host, Rail: a.Rail}
	case faults.OffloadingFailure:
		return faults.Target{Host: a.Host, Rail: a.Rail, VNI: a.VNI}
	case faults.GIDChange, faults.PCIeNICError, faults.GPUDirectRDMAError,
		faults.NotUsingRDMA, faults.RepetitiveFlowOffloading,
		faults.SuboptimalFlowOffloading, faults.HugepageMisconfiguration:
		return faults.Target{Host: a.Host}
	case faults.ContainerCrash:
		return faults.Target{Container: task.Containers[3].ID}
	default:
		return faults.Target{}
	}
}

// Table1IssueCatalog injects every Table-1 issue type into a fresh
// deployment and reports detection/localization per type.
func Table1IssueCatalog(seed int64) (Table1, error) {
	var out Table1
	for _, info := range faults.Catalog() {
		d, task, err := newEvalDeployment(seed + int64(info.Type))
		if err != nil {
			return Table1{}, err
		}
		d.Run(5 * time.Minute) // detector history

		in, err := d.Injector.Inject(info.Type, table1Target(d, task, info.Type))
		if err != nil {
			return Table1{}, fmt.Errorf("inject %s: %w", info.Name, err)
		}
		d.Run(2 * time.Minute)
		if info.Type != faults.ContainerCrash {
			d.Injector.Clear(in)
		}

		rep := metrics.Score(d.Injector.Injections(), d.Analyzer.Alarms(), time.Minute)
		row := Table1Row{
			Issue:            info,
			Detected:         rep.DetectedInjections == 1,
			Localized:        rep.LocalizedInjections == 1,
			DetectionLatency: rep.MeanDetectionLatency,
		}
		symptoms := map[detect.AnomalyType]bool{}
		for _, al := range d.Analyzer.Alarms() {
			for _, an := range al.Anomalies {
				symptoms[an.Type] = true
			}
		}
		for s := range symptoms {
			row.ObservedSymptoms = append(row.ObservedSymptoms, s.String())
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Detected counts detected issue types.
func (t Table1) Detected() int {
	n := 0
	for _, r := range t.Rows {
		if r.Detected {
			n++
		}
	}
	return n
}

// Localized counts correctly localized issue types.
func (t Table1) Localized() int {
	n := 0
	for _, r := range t.Rows {
		if r.Localized {
			n++
		}
	}
	return n
}

// Render emits the catalog table.
func (t Table1) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — network issue catalog (19 types)\n")
	fmt.Fprintf(&b, "%-4s%-30s%-20s%-16s%-10s%-10s%s\n",
		"no.", "issue", "component class", "paper symptom", "detected", "localized", "observed")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-4d%-30s%-20s%-16s%-10v%-10v%s\n",
			r.Issue.Type, r.Issue.Name, r.Issue.Class, r.Issue.Symptom,
			r.Detected, r.Localized, strings.Join(r.ObservedSymptoms, ","))
	}
	fmt.Fprintf(&b, "detected %d/19, localized %d/19\n", t.Detected(), t.Localized())
	return b.String()
}
