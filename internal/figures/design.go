package figures

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"skeletonhunter/internal/dsp"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/stats"
	"skeletonhunter/internal/traffic"
)

// Fig13 demonstrates that STFT features separate burst-cycle classes
// (Fig. 13): RNICs A and B share a cycle, C and D share another.
type Fig13 struct {
	// DistAB/DistCD are the within-class fingerprint distances;
	// DistAC is the cross-class distance.
	DistAB, DistCD, DistAC float64
	// DominantBinAB and DominantBinCD are the classes' fundamental
	// frequency bins.
	DominantBinAB, DominantBinCD int
}

// Fig13STFTFeatures builds two burst classes from a TP8·PP2·DP2 task:
// A and B are the same position across DP replicas, C and D another.
func Fig13STFTFeatures(seed int64) Fig13 {
	gen := &traffic.Generator{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}, GPUsPerContainer: 8, Seed: seed}
	dur := 900 * time.Second
	fp := func(c, r int) []float64 {
		return dsp.BurstFingerprint(gen.Series(parallelism.Endpoint{Container: c, Rail: r}, dur), 128, 64)
	}
	// Containers: c = dp*PP + pp. Position (pp=0, tp=0): containers 0, 2.
	a, b := fp(0, 0), fp(2, 0)
	// Position (pp=1, tp=3): containers 1, 3.
	c, d := fp(1, 3), fp(3, 3)
	binAB, _ := dsp.DominantFrequency(a)
	binCD, _ := dsp.DominantFrequency(c)
	return Fig13{
		DistAB:        dsp.FeatureDistance(a, b),
		DistCD:        dsp.FeatureDistance(c, d),
		DistAC:        dsp.FeatureDistance(a, c),
		DominantBinAB: binAB,
		DominantBinCD: binCD,
	}
}

// Render emits the separability summary.
func (f Fig13) Render() string {
	return fmt.Sprintf("Figure 13 — STFT features of two burst-cycle classes\n"+
		"within-class distance: A↔B=%.4f  C↔D=%.4f\n"+
		"cross-class distance:  A↔C=%.4f\n"+
		"dominant bins: class AB=%d, class CD=%d\n",
		f.DistAB, f.DistCD, f.DistAC, f.DominantBinAB, f.DominantBinCD)
}

// Fig14 reproduces long-term latency distribution tracking (Fig. 14):
// fit a lognormal at time T, Z-test windows at T+0.5h/T+1h/T+1.5h.
type Fig14 struct {
	RefMu, RefSigma float64
	// Windows are the three follow-up tests.
	Windows []Fig14Window
}

// Fig14Window is one follow-up Z-test.
type Fig14Window struct {
	Label    string
	MedianUS float64
	Z        float64
	Rejected bool
}

// Fig14LongTermTracking drives the scenario: healthy at T and T+0.5h,
// degraded at T+1h and further at T+1.5h.
func Fig14LongTermTracking(seed int64) (Fig14, error) {
	r := rand.New(rand.NewSource(seed))
	healthy := stats.LogNormal{Mu: math.Log(16), Sigma: 0.15}
	sample := func(d stats.LogNormal, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = d.Sample(r)
		}
		return xs
	}
	ref, err := stats.FitLogNormal(sample(healthy, 1800))
	if err != nil {
		return Fig14{}, err
	}
	out := Fig14{RefMu: ref.Mu, RefSigma: ref.Sigma}
	cases := []struct {
		label  string
		median float64
	}{
		{"T+0.5h", 16}, // still healthy
		{"T+1.0h", 22}, // degraded
		{"T+1.5h", 30}, // degraded further
	}
	const zThreshold = 6
	for _, c := range cases {
		xs := sample(stats.LogNormal{Mu: math.Log(c.median), Sigma: 0.15}, 1800)
		z, _, err := ref.ZTest(xs)
		if err != nil {
			return Fig14{}, err
		}
		out.Windows = append(out.Windows, Fig14Window{
			Label: c.label, MedianUS: c.median, Z: z, Rejected: math.Abs(z) > zThreshold,
		})
	}
	return out, nil
}

// Render emits the tracking table.
func (f Fig14) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14 — long-term latency distribution tracking\n")
	fmt.Fprintf(&b, "reference fit at T: lognormal(µ=%.3f, σ=%.3f) ⇒ median %.1f µs\n",
		f.RefMu, f.RefSigma, math.Exp(f.RefMu))
	for _, w := range f.Windows {
		verdict := "follows reference"
		if w.Rejected {
			verdict = "ANOMALY (rejects reference)"
		}
		fmt.Fprintf(&b, "%-8s median=%.0fµs  Z=%8.1f  %s\n", w.Label, w.MedianUS, w.Z, verdict)
	}
	return b.String()
}
