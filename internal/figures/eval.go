package figures

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"skeletonhunter/internal/baseline"
	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/hunter"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/probe"
	"skeletonhunter/internal/topology"
)

// scaleConfig maps an RNIC count to the parallelism shape used in the
// probing-scale sweeps (Figs. 15–16). GPU counts follow Fig. 12's
// popular sizes.
func scaleConfig(rnics int) parallelism.Config {
	switch rnics {
	case 256:
		return parallelism.Config{TP: 8, PP: 4, DP: 8}
	case 512:
		return parallelism.Config{TP: 8, PP: 8, DP: 8}
	case 1024:
		return parallelism.Config{TP: 8, PP: 8, DP: 16}
	case 2048:
		return parallelism.Config{TP: 8, PP: 16, DP: 16}
	default:
		return parallelism.Config{TP: 8, PP: 8, DP: rnics / 64}
	}
}

// Fig15Row is one probing-scale data point.
type Fig15Row struct {
	RNICs             int
	FullMesh          int
	DeTector          int
	Basic             int
	Skeleton          int
	SkeletonPerEnd    int // max per-endpoint targets under the skeleton
	BasicReduction    float64
	SkeletonReduction float64
}

// Fig15 is the probing-scale comparison (Fig. 15).
type Fig15 struct {
	Rows []Fig15Row
}

// Fig15ProbingScale sweeps RNIC counts and computes every scheme's
// probe-target count. The skeleton counts use the ground-truth pair
// set (validated against inference at small scale by the skeleton
// package's tests; inference itself is cubic in endpoints and is
// exercised end to end elsewhere).
func Fig15ProbingScale() (Fig15, error) {
	var out Fig15
	for _, rnics := range []int{256, 512, 1024, 2048} {
		cfg := scaleConfig(rnics)
		containers := rnics / 8
		pairs, err := parallelism.SkeletonPairs(cfg, 8)
		if err != nil {
			return Fig15{}, err
		}
		fab, err := topology.New(topology.Production(containers))
		if err != nil {
			return Fig15{}, err
		}
		row := Fig15Row{
			RNICs:    rnics,
			FullMesh: baseline.FullMeshTargets(containers, 8),
			Basic:    baseline.BasicTargets(containers, 8),
			DeTector: baseline.EstimateDeTectorProbes(fab, 3, 2),
			Skeleton: 2 * len(pairs), // both directions
		}
		// Max per-endpoint outgoing targets under the skeleton.
		perEnd := map[parallelism.Endpoint]int{}
		for p := range pairs {
			perEnd[p[0]]++
			perEnd[p[1]]++
		}
		for _, c := range perEnd {
			if c > row.SkeletonPerEnd {
				row.SkeletonPerEnd = c
			}
		}
		row.BasicReduction = 1 - float64(row.Basic)/float64(row.FullMesh)
		row.SkeletonReduction = 1 - float64(row.Skeleton)/float64(row.FullMesh)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render emits the scale table.
func (f Fig15) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 15 — probing targets per round\n")
	fmt.Fprintf(&b, "%-8s%12s%12s%12s%12s%14s%14s\n",
		"RNICs", "full-mesh", "deTector", "basic", "skeleton", "basic-red.", "skel-red.")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-8d%12d%12d%12d%12d%13.1f%%%13.2f%%\n",
			r.RNICs, r.FullMesh, r.DeTector, r.Basic, r.Skeleton,
			100*r.BasicReduction, 100*r.SkeletonReduction)
	}
	return b.String()
}

// Fig16Row is one probing-round-time data point.
type Fig16Row struct {
	RNICs    int
	FullMesh time.Duration
	Basic    time.Duration
	Skeleton time.Duration
}

// Fig16 is the probing-round-time comparison (Fig. 16).
type Fig16 struct {
	Rows []Fig16Row
}

// Fig16ProbingTime converts per-endpoint target counts into round
// durations with the calibrated cost model.
func Fig16ProbingTime() (Fig16, error) {
	f15, err := Fig15ProbingScale()
	if err != nil {
		return Fig16{}, err
	}
	m := baseline.CostModel{}
	var out Fig16
	for _, r := range f15.Rows {
		containers := r.RNICs / 8
		out.Rows = append(out.Rows, Fig16Row{
			RNICs:    r.RNICs,
			FullMesh: m.RoundTime(baseline.PerEndpointFullMesh(containers, 8)),
			Basic:    m.RoundTime(baseline.PerEndpointBasic(containers)),
			Skeleton: m.RoundTime(r.SkeletonPerEnd),
		})
	}
	return out, nil
}

// Render emits the round-time table.
func (f Fig16) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 16 — time cost of one probing round\n")
	fmt.Fprintf(&b, "%-8s%14s%14s%14s\n", "RNICs", "full-mesh", "basic", "skeleton")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-8d%14s%14s%14s\n", r.RNICs,
			r.FullMesh.Round(time.Second), r.Basic.Round(time.Second), r.Skeleton.Round(time.Second))
	}
	return b.String()
}

// Fig17 is the agent-overhead convergence curve (Fig. 17).
type Fig17 struct {
	Ages  []time.Duration
	CPU   []float64
	MemMB []float64
}

// Fig17AgentOverhead samples the agent resource model over a container
// lifetime with a skeleton-sized ping list.
func Fig17AgentOverhead() Fig17 {
	m := probe.ResourceModel{Targets: 24}
	var out Fig17
	for _, age := range []time.Duration{
		0, 10 * time.Second, 30 * time.Second, time.Minute, 2 * time.Minute,
		5 * time.Minute, 10 * time.Minute, 30 * time.Minute, time.Hour,
	} {
		out.Ages = append(out.Ages, age)
		out.CPU = append(out.CPU, m.CPUPercent(age))
		out.MemMB = append(out.MemMB, m.MemoryMB(age))
	}
	return out
}

// Render emits the convergence rows.
func (f Fig17) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 17 — agent resource consumption over container lifetime\n")
	fmt.Fprintf(&b, "%-10s%10s%10s\n", "age", "cpu%", "memMB")
	for i := range f.Ages {
		fmt.Fprintf(&b, "%-10s%10.2f%10.1f\n", f.Ages[i], f.CPU[i], f.MemMB[i])
	}
	return b.String()
}

// fastLag gives deterministic, quick container lifecycles for the
// evaluation scenarios.
func fastLag() cluster.LagModel {
	return cluster.LagModel{
		CreateLag:    func(r *rand.Rand, i int) time.Duration { return time.Duration(i) * time.Second },
		StartupDelay: func(r *rand.Rand) time.Duration { return 5 * time.Second },
		StopLag:      func(r *rand.Rand) time.Duration { return time.Second },
	}
}

func newEvalDeployment(seed int64) (*hunter.Deployment, *cluster.Task, error) {
	d, err := hunter.New(hunter.Options{
		Seed: seed,
		Spec: topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2},
		Lag:  fastLag(),
	})
	if err != nil {
		return nil, nil, err
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		return nil, nil, err
	}
	d.Run(time.Minute)
	return d, task, nil
}

// Fig18 is the production case study (Fig. 18): flow-table
// inconsistency between overlay and underlay.
type Fig18 struct {
	// RTTSeries is the observed RTT (µs) of the affected pair per
	// second; 0 marks lost probes.
	RTTSeries []float64
	InjectAt  time.Duration
	DetectAt  time.Duration
	IsolateAt time.Duration
	RecoverAt time.Duration
	// Verdict is the localization outcome.
	Verdict string
	// DetectionLatency = DetectAt − InjectAt.
	DetectionLatency time.Duration
	// QueueDuringAnomaly is the ToR queue length while latency was
	// anomalous — the paper validated the case was NOT congestion by
	// observing it "hardly increases".
	QueueDuringAnomaly float64
	// QueueBaseline is the queue length during the healthy prefix.
	QueueBaseline float64
}

// Fig18CaseStudy scripts the scenario: healthy baseline, offload
// entries invalidated on one RNIC at t≈90 s (relative to the
// observation window), detection, dump-based localization, isolation,
// recovery within 60 s.
func Fig18CaseStudy(seed int64) (Fig18, error) {
	d, task, err := newEvalDeployment(seed)
	if err != nil {
		return Fig18{}, err
	}
	// Detector history.
	d.Run(5 * time.Minute)

	a := task.Containers[0].Addrs[6]
	bAddr := task.Containers[1].Addrs[6]

	var out Fig18
	obsStart := d.Engine.Now()
	sample := func() {
		res := d.Net.Probe(a, bAddr, uint64(len(out.RTTSeries)))
		if res.Lost {
			out.RTTSeries = append(out.RTTSeries, 0)
		} else {
			out.RTTSeries = append(out.RTTSeries, float64(res.RTT)/float64(time.Microsecond))
		}
	}
	runSampled := func(dur time.Duration) {
		for i := time.Duration(0); i < dur; i += time.Second {
			d.Run(time.Second)
			sample()
		}
	}

	runSampled(90 * time.Second) // healthy prefix
	tor := d.Fabric.ToR(d.Fabric.PodOf(a.Host), 6)
	out.QueueBaseline = d.Net.QueueLength(tor)

	in, err := d.Injector.Inject(faults.OffloadingFailure, faults.Target{Host: a.Host, Rail: 6, VNI: a.VNI})
	if err != nil {
		return Fig18{}, err
	}
	out.InjectAt = d.Engine.Now() - obsStart

	// Run until the analyzer raises an alarm naming the RNIC.
	deadline := d.Engine.Now() + 3*time.Minute
	for d.Engine.Now() < deadline && out.DetectAt == 0 {
		d.Run(time.Second)
		sample()
		for _, al := range d.Analyzer.Alarms() {
			for _, v := range al.Verdicts {
				for _, c := range v.Components {
					if c == in.Components[0] {
						out.DetectAt = al.At - obsStart
						out.Verdict = v.Detail
					}
				}
			}
		}
	}
	if out.DetectAt == 0 {
		return Fig18{}, fmt.Errorf("figures: Fig18 fault never localized")
	}
	out.DetectionLatency = out.DetectAt - out.InjectAt
	out.QueueDuringAnomaly = d.Net.QueueLength(tor)

	// Isolation: the RNIC is reset/isolated; recovery completes 60 s
	// later (the paper's observed recovery time).
	runSampled(10 * time.Second)
	out.IsolateAt = d.Engine.Now() - obsStart
	d.Injector.Clear(in)
	runSampled(60 * time.Second)
	out.RecoverAt = d.Engine.Now() - obsStart
	runSampled(30 * time.Second) // healthy tail
	return out, nil
}

// Render emits the event log and a condensed latency series.
func (f Fig18) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 18 — case study: overlay↔underlay flow-table inconsistency\n")
	fmt.Fprintf(&b, "inject=%s detect=%s (latency %s) isolate=%s recovered=%s\n",
		f.InjectAt.Round(time.Second), f.DetectAt.Round(time.Second),
		f.DetectionLatency.Round(time.Second), f.IsolateAt.Round(time.Second),
		f.RecoverAt.Round(time.Second))
	fmt.Fprintf(&b, "verdict: %s\n", f.Verdict)
	fmt.Fprintf(&b, "ToR queue length: %.1f pkts healthy vs %.1f during anomaly (flat ⇒ not congestion)\n",
		f.QueueBaseline, f.QueueDuringAnomaly)
	fmt.Fprintf(&b, "RTT series (µs, every 10th second; 0 = lost):\n")
	for i := 0; i < len(f.RTTSeries); i += 10 {
		fmt.Fprintf(&b, "%6.0f", f.RTTSeries[i])
		if (i/10+1)%15 == 0 {
			b.WriteByte('\n')
		}
	}
	b.WriteByte('\n')
	return b.String()
}
