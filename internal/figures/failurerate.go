package figures

import (
	"fmt"
	"strings"
	"time"

	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/metrics"
	"skeletonhunter/internal/topology"
)

// FailureRate reproduces the §7.1 operational claim: after fixing 98 %
// of the problematic components SkeletonHunter localized, the monthly
// network failure rate dropped by 99.1 %.
//
// The model: a pool of flaky components each fails (flakes) a fixed
// number of times per compressed "month". The pre-fix month exercises
// the whole pool; then all but 2 % of the pool is repaired (the
// remainder being the commodity-hardware components whose internals
// CSPs cannot fix), and the post-fix month exercises only the
// survivors. Both months run through the full detection pipeline, so
// the rates are *detected* failures, not injection counts.
type FailureRate struct {
	PoolSize        int
	FixedComponents int
	Before          int // detected failures in the pre-fix month
	After           int // detected failures in the post-fix month
	ReductionPct    float64
	RecallBefore    float64
}

// FailureRateReduction runs the two compressed months.
func FailureRateReduction(seed int64) (FailureRate, error) {
	d, task, err := newEvalDeployment(seed)
	if err != nil {
		return FailureRate{}, err
	}
	d.Run(5 * time.Minute) // detector history

	// The flaky pool: one link per (host, rail) of the task's four
	// hosts on six rails (24 link components), plus every host's board
	// and vswitch … 54 components when doubled with switch configs.
	type flaky struct {
		issue  faults.IssueType
		target faults.Target
	}
	var pool []flaky
	for _, c := range task.Containers {
		for rail := 0; rail < 6; rail++ {
			nic := topology.NIC{Host: c.Host, Rail: rail}
			link := topology.MakeLinkID(nic.ID(), d.Fabric.ToR(d.Fabric.PodOf(c.Host), rail))
			pool = append(pool, flaky{faults.SwitchPortDown, faults.Target{Link: link}})
		}
		pool = append(pool,
			flaky{faults.PCIeNICError, faults.Target{Host: c.Host}},
			flaky{faults.RNICFirmwareNotResponding, faults.Target{Host: c.Host, Rail: 6}},
		)
	}
	for rail := 0; rail < 3; rail++ {
		pool = append(pool, flaky{faults.CongestionControlIssue,
			faults.Target{Switch: d.Fabric.ToR(0, rail)}})
	}

	month := func(members []flaky, flakesEach int) (detected int, recall float64, err error) {
		start := len(d.Injector.Injections())
		for f := 0; f < flakesEach; f++ {
			for _, fl := range members {
				in, err := d.Injector.Inject(fl.issue, fl.target)
				if err != nil {
					return 0, 0, err
				}
				d.Run(30 * time.Second)
				d.Injector.Clear(in)
				d.Run(15 * time.Second)
			}
		}
		d.Run(time.Minute) // drain
		rep := metrics.Score(d.Injector.Injections()[start:], d.Analyzer.Alarms(), time.Minute)
		return rep.DetectedInjections, rep.Recall(), nil
	}

	out := FailureRate{PoolSize: len(pool)}

	// Pre-fix month: every pool member flakes twice.
	before, recall, err := month(pool, 2)
	if err != nil {
		return FailureRate{}, err
	}
	out.Before = before
	out.RecallBefore = recall

	// The fix: all but ~2 % of the pool is repaired (the unfixable
	// remainder models commodity switch/RNIC internals, §7.1).
	remaining := len(pool) / 50
	if remaining < 1 {
		remaining = 1
	}
	out.FixedComponents = len(pool) - remaining

	after, _, err := month(pool[:remaining], 1)
	if err != nil {
		return FailureRate{}, err
	}
	out.After = after
	if out.Before > 0 {
		out.ReductionPct = 100 * (1 - float64(out.After)/float64(out.Before))
	}
	return out, nil
}

// Render emits the before/after rates.
func (f FailureRate) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§7.1 — monthly failure rate before/after component fixes\n")
	fmt.Fprintf(&b, "flaky component pool: %d; fixed: %d (%.0f%%)\n",
		f.PoolSize, f.FixedComponents, 100*float64(f.FixedComponents)/float64(f.PoolSize))
	fmt.Fprintf(&b, "detected failures: %d/month before → %d/month after (recall before: %.1f%%)\n",
		f.Before, f.After, 100*f.RecallBefore)
	fmt.Fprintf(&b, "monthly failure rate reduction: %.1f%% (paper: 99.1%%)\n", f.ReductionPct)
	return b.String()
}
