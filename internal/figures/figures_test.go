package figures

import (
	"strings"
	"testing"
	"time"
)

func TestFig02Shape(t *testing.T) {
	f := Fig02ContainerLifetime(1, 5000)
	// ~50 % of small-task containers under 60 min (point index 2 = 60).
	p60 := f.CDF[0][2]
	if p60 < 0.4 || p60 > 0.62 {
		t.Fatalf("P(small ≤ 60min) = %v", p60)
	}
	// Monotone CDFs, large class right-shifted.
	for _, cdf := range f.CDF {
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				t.Fatal("CDF not monotone")
			}
		}
	}
	if f.CDF[2][2] >= f.CDF[0][2] {
		t.Fatal("large tasks not longer-lived")
	}
	if !strings.Contains(f.Render(), "Figure 2") {
		t.Fatal("render header missing")
	}
}

func TestFig03Shape(t *testing.T) {
	f := Fig03LifetimeByConfig(1, 5000)
	if f.CDF[0][2] <= f.CDF[2][2] {
		t.Fatal("low-end containers should die younger than high-end")
	}
	_ = f.Render()
}

func TestFig04Shape(t *testing.T) {
	f := Fig04StartupTime(1)
	if len(f.Startup) != 6 {
		t.Fatalf("tasks = %d", len(f.Startup))
	}
	// Larger tasks bear longer tails.
	last := func(i int) time.Duration { return f.Startup[i][len(f.Startup[i])-1] }
	if last(5) <= last(0) {
		t.Fatal("512-container tail not beyond 16-container tail")
	}
	_ = f.Render()
}

func TestFig05Shape(t *testing.T) {
	f := Fig05RNICsPerContainer(1, 20000)
	if f.Counts[8] <= f.Counts[4] {
		t.Fatal("8-RNIC allocation not dominant")
	}
	_ = f.Render()
}

func TestFig06Shape(t *testing.T) {
	f := Fig06FlowTableItems(1, 50000)
	if f.Mean <= 40 {
		t.Fatalf("mean = %v, want > 40", f.Mean)
	}
	if f.Max < 2000 {
		t.Fatalf("max = %d, want heavy tail", f.Max)
	}
	_ = f.Render()
}

func TestFig07Shape(t *testing.T) {
	f := Fig07BurstCycles(1)
	if f.PeakGbps < 10 {
		t.Fatalf("peak = %v", f.PeakGbps)
	}
	if f.IdleFrac < 0.3 {
		t.Fatalf("idle fraction = %v", f.IdleFrac)
	}
	_ = f.Render()
}

func TestFig09Shape(t *testing.T) {
	f, err := Fig09TrafficMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if f.DenseDensity <= 0 || f.DenseDensity > 0.02 {
		t.Fatalf("dense density = %v", f.DenseDensity)
	}
	if f.MoEDensity <= f.DenseDensity {
		t.Fatal("MoE not denser than dense")
	}
	if f.Endpoints != 512 {
		t.Fatalf("endpoints = %d", f.Endpoints)
	}
	_ = f.Render()
}

func TestFig12Shape(t *testing.T) {
	f := Fig12JobSizes(1, 20000)
	if f.Counts[512] <= f.Counts[16] {
		t.Fatal("512-GPU jobs not dominant over 16")
	}
	_ = f.Render()
}

func TestFig13Shape(t *testing.T) {
	f := Fig13STFTFeatures(1)
	if f.DistAB >= f.DistAC || f.DistCD >= f.DistAC {
		t.Fatalf("classes not separable: %+v", f)
	}
	_ = f.Render()
}

func TestFig14Shape(t *testing.T) {
	f, err := Fig14LongTermTracking(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Windows) != 3 {
		t.Fatalf("windows = %d", len(f.Windows))
	}
	if f.Windows[0].Rejected {
		t.Fatal("T+0.5h (healthy) rejected")
	}
	if !f.Windows[1].Rejected || !f.Windows[2].Rejected {
		t.Fatal("degraded windows not rejected")
	}
	_ = f.Render()
}

func TestFig15Shape(t *testing.T) {
	f, err := Fig15ProbingScale()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 4 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	for _, r := range f.Rows {
		// Ordering: full mesh ≫ basic ≫ skeleton; the 8× rail pruning
		// and the >95 % total reduction of §5.1.
		if !(r.FullMesh > r.Basic && r.Basic > r.Skeleton) {
			t.Fatalf("ordering violated: %+v", r)
		}
		if r.FullMesh/r.Basic != 8 {
			t.Fatalf("rail pruning factor = %d", r.FullMesh/r.Basic)
		}
		if r.SkeletonReduction < 0.95 {
			t.Fatalf("skeleton reduction = %v, want > 95%%", r.SkeletonReduction)
		}
	}
	// deTector lands near the paper's 15K at 2048 RNICs.
	last := f.Rows[3]
	if last.DeTector < 10000 || last.DeTector > 25000 {
		t.Fatalf("deTector estimate = %d, want ≈15K", last.DeTector)
	}
	_ = f.Render()
}

func TestFig16Shape(t *testing.T) {
	f, err := Fig16ProbingTime()
	if err != nil {
		t.Fatal(err)
	}
	last := f.Rows[len(f.Rows)-1] // 2048 RNICs
	// Paper: 2034 s full mesh, 240 s basic, 25 s skeleton. Shapes: the
	// same ~8× and ~10× steps.
	if last.FullMesh < 1800*time.Second || last.FullMesh > 2200*time.Second {
		t.Fatalf("full-mesh round = %v", last.FullMesh)
	}
	if last.Basic < 200*time.Second || last.Basic > 300*time.Second {
		t.Fatalf("basic round = %v", last.Basic)
	}
	if last.Skeleton > 60*time.Second {
		t.Fatalf("skeleton round = %v", last.Skeleton)
	}
	_ = f.Render()
}

func TestFig17Shape(t *testing.T) {
	f := Fig17AgentOverhead()
	n := len(f.Ages)
	if f.CPU[n-1] > 1.2 {
		t.Fatalf("steady CPU = %v", f.CPU[n-1])
	}
	if f.MemMB[n-1] < 30 || f.MemMB[n-1] > 42 {
		t.Fatalf("steady memory = %v", f.MemMB[n-1])
	}
	_ = f.Render()
}

func TestFig18Shape(t *testing.T) {
	f, err := Fig18CaseStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy before injection (~16 µs), slow during fault (~120 µs),
	// healthy after recovery.
	idx := func(d time.Duration) int { return int(d / time.Second) }
	pre := f.RTTSeries[idx(f.InjectAt)-5]
	during := f.RTTSeries[idx(f.DetectAt)-1]
	post := f.RTTSeries[len(f.RTTSeries)-5]
	if pre < 8 || pre > 30 {
		t.Fatalf("pre-fault RTT = %v µs", pre)
	}
	if during < 90 {
		t.Fatalf("during-fault RTT = %v µs, want ≈120", during)
	}
	if post < 8 || post > 30 {
		t.Fatalf("post-recovery RTT = %v µs", post)
	}
	if f.DetectionLatency <= 0 || f.DetectionLatency > 90*time.Second {
		t.Fatalf("detection latency = %v", f.DetectionLatency)
	}
	if !strings.Contains(f.Verdict, "RNIC") && !strings.Contains(f.Verdict, "rnic") {
		t.Fatalf("verdict does not name the RNIC: %q", f.Verdict)
	}
	_ = f.Render()
}

func TestTable1AllDetectedAndLocalized(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign scenario; run without -short")
	}
	tab, err := Table1IssueCatalog(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 19 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Detected() < 18 {
		t.Fatalf("detected %d/19:\n%s", tab.Detected(), tab.Render())
	}
	if tab.Localized() < 17 {
		t.Fatalf("localized %d/19:\n%s", tab.Localized(), tab.Render())
	}
}

func TestTrainingImpact(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign scenario; run without -short")
	}
	im, err := TrainingImpact(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Without feedback every job lands on the faulty host and dies;
	// with feedback only the first does.
	if im.FailedWithout != im.JobsPerWorld {
		t.Fatalf("without feedback: %d/%d failed, want all", im.FailedWithout, im.JobsPerWorld)
	}
	if im.FailedWith > 1 {
		t.Fatalf("with feedback: %d failed, want ≤1", im.FailedWith)
	}
	if im.IterationsWith <= im.IterationsWithout {
		t.Fatalf("feedback did not improve training progress: %d vs %d",
			im.IterationsWith, im.IterationsWithout)
	}
	_ = im.Render()
}

func TestFailureRateReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign scenario; run without -short")
	}
	f, err := FailureRateReduction(1)
	if err != nil {
		t.Fatal(err)
	}
	if f.RecallBefore < 0.95 {
		t.Fatalf("pre-fix recall = %v under churn", f.RecallBefore)
	}
	if f.ReductionPct < 95 {
		t.Fatalf("reduction = %v%%, want ≥95%% (paper: 99.1%%)", f.ReductionPct)
	}
	if f.After >= f.Before {
		t.Fatalf("rate did not drop: %d → %d", f.Before, f.After)
	}
	_ = f.Render()
}

func TestTable1SeedRobustness(t *testing.T) {
	// The 19/19 outcome must not be a lucky seed: repeat the catalog
	// under different seeds and require near-perfect detection and
	// localization in each run.
	if testing.Short() {
		t.Skip("campaign scenario; run without -short")
	}
	for _, seed := range []int64{101, 202} {
		tab, err := Table1IssueCatalog(seed)
		if err != nil {
			t.Fatal(err)
		}
		if tab.Detected() < 19 {
			t.Fatalf("seed %d: detected %d/19\n%s", seed, tab.Detected(), tab.Render())
		}
		if tab.Localized() < 18 {
			t.Fatalf("seed %d: localized %d/19\n%s", seed, tab.Localized(), tab.Render())
		}
	}
}

func TestHeadlineAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign scenario; run without -short")
	}
	h, err := HeadlineAccuracy(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := h.Report
	if r.Precision() < 0.9 {
		t.Fatalf("precision = %v\n%s", r.Precision(), h.Render())
	}
	if r.Recall() < 0.9 {
		t.Fatalf("recall = %v\n%s", r.Recall(), h.Render())
	}
	if r.LocalizationAccuracy() < 0.85 {
		t.Fatalf("localization accuracy = %v\n%s", r.LocalizationAccuracy(), h.Render())
	}
	if h.OrthogonalDetected != 0 {
		t.Fatalf("orthogonal incidents visible: %d", h.OrthogonalDetected)
	}
	if r.MeanDetectionLatency > 90*time.Second {
		t.Fatalf("mean detection latency = %v", r.MeanDetectionLatency)
	}
}
