package figures

import (
	"fmt"
	"strings"
	"time"

	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/metrics"
	"skeletonhunter/internal/netsim"
)

// Headline reproduces the §7.1 accuracy campaign at reduced scale:
// a sequence of injections spanning every Table-1 issue type, scored
// for precision, recall, localization accuracy and detection latency.
// Orthogonal intra-host incidents (GPU-to-GPU NVLink), which the paper
// identifies as its false-negative source (§7.3), are tracked
// separately: they produce no network symptom and are expected to be
// invisible to SkeletonHunter.
type Headline struct {
	Report metrics.Report
	// OrthogonalIncidents counts injected intra-host (non-network)
	// incidents, and OrthogonalDetected how many SkeletonHunter saw
	// (expected: 0 — they are out of scope, §7.3).
	OrthogonalIncidents int
	OrthogonalDetected  int
	// AgentCrashIncidents counts monitoring-system self-failures: a
	// sidecar agent crashes and stops answering probes while the
	// network is healthy. The paper identifies these as its main
	// false-alarm source (§7.3); they count against precision because
	// no network component is actually at fault.
	AgentCrashIncidents int
}

// HeadlineAccuracy runs the campaign: `rounds` passes over the issue
// catalog (container crashes excluded from repetition — a crash
// permanently removes a container — and injected once at the end).
func HeadlineAccuracy(seed int64, rounds int) (Headline, error) {
	d, task, err := newEvalDeployment(seed)
	if err != nil {
		return Headline{}, err
	}
	d.Run(5 * time.Minute)

	var out Headline
	inject := func(t faults.IssueType) error {
		in, err := d.Injector.Inject(t, table1Target(d, task, t))
		if err != nil {
			return err
		}
		d.Run(2 * time.Minute)
		if t != faults.ContainerCrash {
			d.Injector.Clear(in)
		}
		d.Run(2 * time.Minute) // drain + healthy gap
		return nil
	}

	for round := 0; round < rounds; round++ {
		for _, info := range faults.Catalog() {
			if info.Type == faults.ContainerCrash {
				continue
			}
			if err := inject(info.Type); err != nil {
				return Headline{}, fmt.Errorf("round %d %s: %w", round, info.Name, err)
			}
		}
		// Orthogonal intra-host incident: a GPU↔GPU NVLink degradation.
		// No network component is touched, so no alarm should fire; the
		// paper's remaining false negatives come from exactly this class.
		out.OrthogonalIncidents++
		alarmsBefore := len(d.Analyzer.Alarms())
		d.Run(2 * time.Minute)
		if len(d.Analyzer.Alarms()) > alarmsBefore {
			out.OrthogonalDetected++
		}
	}
	// §7.3's false-alarm source: a sidecar agent crashes and stops
	// responding to probes. The network is healthy and nothing is
	// recorded as ground truth, so the resulting alarms are false
	// positives — exactly the precision loss the paper reports.
	crashHost := task.Containers[1].Host
	d.Net.SetHostCondition(crashHost, &netsim.Condition{Down: true})
	out.AgentCrashIncidents++
	d.Run(90 * time.Second)
	d.Net.SetHostCondition(crashHost, nil)
	d.Run(2 * time.Minute)

	// One terminal container crash.
	if err := inject(faults.ContainerCrash); err != nil {
		return Headline{}, err
	}

	out.Report = metrics.Score(d.Injector.Injections(), d.Analyzer.Alarms(), time.Minute)
	return out, nil
}

// Render emits the headline numbers.
func (h Headline) Render() string {
	var b strings.Builder
	r := h.Report
	fmt.Fprintf(&b, "§7.1 headline accuracy (reduced-scale campaign)\n")
	fmt.Fprintf(&b, "injections=%d alarms=%d\n", r.Injections, r.Alarms)
	fmt.Fprintf(&b, "precision=%.1f%% recall=%.1f%% localization-accuracy=%.1f%%\n",
		100*r.Precision(), 100*r.Recall(), 100*r.LocalizationAccuracy())
	fmt.Fprintf(&b, "mean detection latency=%s\n", r.MeanDetectionLatency.Round(time.Second))
	fmt.Fprintf(&b, "orthogonal intra-host incidents: %d injected, %d visible to SkeletonHunter (expected 0, §7.3)\n",
		h.OrthogonalIncidents, h.OrthogonalDetected)
	fmt.Fprintf(&b, "monitoring self-failures (agent crashes): %d — the false-positive source behind the precision gap (§7.3)\n",
		h.AgentCrashIncidents)
	return b.String()
}
