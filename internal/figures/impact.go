package figures

import (
	"fmt"
	"strings"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/hunter"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/topology"
	"skeletonhunter/internal/trainsim"
)

// Impact quantifies what the monitoring feedback loop buys at the
// training-progress level: a host develops a latent connectivity fault
// (an RNIC port that dies); tenant jobs keep arriving. Without
// SkeletonHunter's feedback, the scheduler keeps placing new jobs onto
// the faulty host (first-fit finds it free again after each crash) and
// every one of them dies at the collective timeout. With the feedback
// loop, the first failure blacklists the host and every subsequent job
// trains to completion.
type Impact struct {
	JobsPerWorld int
	// FailedWithout/FailedWith count failed jobs in each world.
	FailedWithout, FailedWith int
	// IterationsWithout/IterationsWith sum completed training rounds.
	IterationsWithout, IterationsWith int
}

// TrainingImpact runs the two worlds with identical fault placement.
func TrainingImpact(seed int64, jobs int) (Impact, error) {
	if jobs <= 0 {
		jobs = 5
	}
	run := func(feedbackOff bool) (failed, iterations int, err error) {
		d, err := hunter.New(hunter.Options{
			Seed:            seed,
			Spec:            evalSpec(),
			Lag:             fastLag(),
			DisableFeedback: feedbackOff,
		})
		if err != nil {
			return 0, 0, err
		}
		// The latent fault: host 0's rail-0 RNIC is dead. First-fit
		// placement will put every fresh job's first container there.
		if _, err := d.Injector.Inject(faults.RNICPortDown, faults.Target{Host: 0, Rail: 0}); err != nil {
			return 0, 0, err
		}
		for i := 0; i < jobs; i++ {
			task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
			if err != nil {
				return 0, 0, err
			}
			d.Run(time.Minute) // containers running
			job, err := trainsim.Start(d.Engine, d.Net, task, trainsim.Config{MaxIterations: 10})
			if err != nil {
				return 0, 0, err
			}
			d.Run(8 * time.Minute) // 10 rounds at 30 s, plus margin
			job.Stop()
			if job.Failed {
				failed++
			}
			iterations += job.Iterations
			d.CP.FinishTask(task.ID)
			d.Run(time.Minute) // teardown + analyzer drain
		}
		return failed, iterations, nil
	}

	var out Impact
	out.JobsPerWorld = jobs
	var err error
	if out.FailedWithout, out.IterationsWithout, err = run(true); err != nil {
		return Impact{}, fmt.Errorf("world without feedback: %w", err)
	}
	if out.FailedWith, out.IterationsWith, err = run(false); err != nil {
		return Impact{}, fmt.Errorf("world with feedback: %w", err)
	}
	return out, nil
}

// Render emits the comparison.
func (im Impact) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Training impact — scheduler feedback loop (latent RNIC-down fault, %d sequential jobs)\n", im.JobsPerWorld)
	fmt.Fprintf(&b, "%-28s%10s%14s\n", "", "failed", "rounds done")
	fmt.Fprintf(&b, "%-28s%10d%14d\n", "without SkeletonHunter", im.FailedWithout, im.IterationsWithout)
	fmt.Fprintf(&b, "%-28s%10d%14d\n", "with SkeletonHunter", im.FailedWith, im.IterationsWith)
	return b.String()
}

// evalSpec is the standard small evaluation fabric.
func evalSpec() topology.Spec {
	return topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2}
}
