// Package figures regenerates every figure and table of the paper's
// motivation (§3) and evaluation (§7) sections from the simulated
// substrates. Each generator returns a printable result whose Render
// method emits the rows/series the paper plots; cmd/figures prints them
// all and bench_test.go wraps each in a benchmark.
package figures

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/trace"
	"skeletonhunter/internal/traffic"
)

// Fig02 is the container-lifetime CDF by task size (Fig. 2).
type Fig02 struct {
	Points []time.Duration
	// CDF[class][i] = P(lifetime ≤ Points[i]) for that size class.
	CDF map[trace.SizeClass][]float64
}

// Fig02ContainerLifetime samples lifetimes per size class and computes
// their CDFs.
func Fig02ContainerLifetime(seed int64, samples int) Fig02 {
	points := []time.Duration{}
	for m := 20; m <= 300; m += 20 {
		points = append(points, time.Duration(m)*time.Minute)
	}
	out := Fig02{Points: points, CDF: map[trace.SizeClass][]float64{}}
	for _, cls := range []trace.SizeClass{trace.SizeSmall, trace.SizeMedium, trace.SizeLarge} {
		r := rand.New(rand.NewSource(seed + int64(cls)))
		xs := make([]time.Duration, samples)
		for i := range xs {
			xs[i] = trace.Lifetime(r, cls)
		}
		out.CDF[cls] = trace.CDF(xs, points)
	}
	return out
}

// Render emits the CDF rows.
func (f Fig02) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — container lifetime CDF by task size\n")
	fmt.Fprintf(&b, "%-10s", "minutes")
	for _, cls := range []trace.SizeClass{trace.SizeSmall, trace.SizeMedium, trace.SizeLarge} {
		fmt.Fprintf(&b, "%12s", cls)
	}
	b.WriteByte('\n')
	for i, p := range f.Points {
		fmt.Fprintf(&b, "%-10d", int(p.Minutes()))
		for _, cls := range []trace.SizeClass{trace.SizeSmall, trace.SizeMedium, trace.SizeLarge} {
			fmt.Fprintf(&b, "%12.3f", f.CDF[cls][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig03 is the lifetime CDF by container configuration (Fig. 3).
type Fig03 struct {
	Points []time.Duration
	CDF    map[trace.ConfigClass][]float64
}

// Fig03LifetimeByConfig samples lifetimes per hardware class.
func Fig03LifetimeByConfig(seed int64, samples int) Fig03 {
	points := []time.Duration{}
	for m := 20; m <= 300; m += 20 {
		points = append(points, time.Duration(m)*time.Minute)
	}
	out := Fig03{Points: points, CDF: map[trace.ConfigClass][]float64{}}
	for _, cls := range []trace.ConfigClass{trace.ConfigLowEnd, trace.ConfigMidEnd, trace.ConfigHighEnd} {
		r := rand.New(rand.NewSource(seed + 100 + int64(cls)))
		xs := make([]time.Duration, samples)
		for i := range xs {
			xs[i] = trace.LifetimeByConfig(r, cls)
		}
		out.CDF[cls] = trace.CDF(xs, points)
	}
	return out
}

// Render emits the CDF rows.
func (f Fig03) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — container lifetime CDF by configuration\n")
	fmt.Fprintf(&b, "%-10s", "minutes")
	for _, cls := range []trace.ConfigClass{trace.ConfigLowEnd, trace.ConfigMidEnd, trace.ConfigHighEnd} {
		fmt.Fprintf(&b, "%12s", cls)
	}
	b.WriteByte('\n')
	for i, p := range f.Points {
		fmt.Fprintf(&b, "%-10d", int(p.Minutes()))
		for _, cls := range []trace.ConfigClass{trace.ConfigLowEnd, trace.ConfigMidEnd, trace.ConfigHighEnd} {
			fmt.Fprintf(&b, "%12.3f", f.CDF[cls][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig04 is the phased startup-time profile of several tasks (Fig. 4).
type Fig04 struct {
	TaskSizes []int
	// Startup[t][i] is the i-th container's creation→running delay in
	// task t (sorted ascending: the "container index vs time" curve).
	Startup [][]time.Duration
}

// Fig04StartupTime profiles six tasks of increasing size.
func Fig04StartupTime(seed int64) Fig04 {
	sizes := []int{16, 32, 64, 128, 256, 512}
	out := Fig04{TaskSizes: sizes}
	for i, n := range sizes {
		r := rand.New(rand.NewSource(seed + int64(i)))
		out.Startup = append(out.Startup, trace.StartupTimes(r, n))
	}
	return out
}

// Render emits per-task quartiles and tail.
func (f Fig04) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — container startup time by task size\n")
	fmt.Fprintf(&b, "%-10s%12s%12s%12s%12s\n", "size", "p25", "p50", "p90", "max")
	for i, n := range f.TaskSizes {
		st := f.Startup[i]
		q := func(p float64) time.Duration { return st[int(p*float64(len(st)-1))] }
		fmt.Fprintf(&b, "%-10d%12s%12s%12s%12s\n", n,
			q(0.25).Round(time.Second), q(0.5).Round(time.Second),
			q(0.9).Round(time.Second), st[len(st)-1].Round(time.Second))
	}
	return b.String()
}

// Fig05 is the RNICs-per-container distribution (Fig. 5).
type Fig05 struct {
	Counts map[int]int
	Total  int
}

// Fig05RNICsPerContainer samples container allocations.
func Fig05RNICsPerContainer(seed int64, samples int) Fig05 {
	r := rand.New(rand.NewSource(seed))
	out := Fig05{Counts: map[int]int{}, Total: samples}
	for i := 0; i < samples; i++ {
		out.Counts[trace.RNICsPerContainer(r)]++
	}
	return out
}

// Render emits the allocation shares.
func (f Fig05) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — RNICs allocated per container\n")
	keys := make([]int, 0, len(f.Counts))
	for k := range f.Counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%d RNICs: %6.2f%%\n", k, 100*float64(f.Counts[k])/float64(f.Total))
	}
	return b.String()
}

// Fig06 is the per-host flow-table item distribution (Fig. 6).
type Fig06 struct {
	Mean          float64
	P50, P90, P99 int
	Max           int
}

// Fig06FlowTableItems samples per-host flow-table populations.
func Fig06FlowTableItems(seed int64, hosts int) Fig06 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]int, hosts)
	sum := 0
	for i := range xs {
		xs[i] = trace.FlowTableItems(r)
		sum += xs[i]
	}
	sort.Ints(xs)
	return Fig06{
		Mean: float64(sum) / float64(hosts),
		P50:  xs[hosts/2],
		P90:  xs[hosts*9/10],
		P99:  xs[hosts*99/100],
		Max:  xs[hosts-1],
	}
}

// Render emits the distribution summary.
func (f Fig06) Render() string {
	return fmt.Sprintf("Figure 6 — flow-table items per host\nmean=%.1f p50=%d p90=%d p99=%d max=%d\n",
		f.Mean, f.P50, f.P90, f.P99, f.Max)
}

// Fig07 is the burst-cycle throughput series of a training container's
// RNICs (Fig. 7).
type Fig07 struct {
	SampleInterval time.Duration
	// Series[r] is rail r's throughput in Gbps.
	Series   [][]float64
	PeakGbps float64
	IdleFrac float64
}

// Fig07BurstCycles generates 900 s of a typical container's traffic.
func Fig07BurstCycles(seed int64) Fig07 {
	gen := &traffic.Generator{Par: parallelism.Config{TP: 8, PP: 4, DP: 4}, GPUsPerContainer: 8, Seed: seed}
	out := Fig07{SampleInterval: time.Second}
	idle, total := 0, 0
	for r := 0; r < 4; r++ {
		s := gen.Series(parallelism.Endpoint{Container: 0, Rail: r}, 900*time.Second)
		out.Series = append(out.Series, s)
		for _, v := range s {
			total++
			if v < 1 {
				idle++
			}
			if v > out.PeakGbps {
				out.PeakGbps = v
			}
		}
	}
	out.IdleFrac = float64(idle) / float64(total)
	return out
}

// Render summarizes the series (the full trace is long; the summary
// carries the figure's message: periodic ~15 Gbps peaks, long idles).
func (f Fig07) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — traffic burst cycles (900 s, 1 s samples)\n")
	fmt.Fprintf(&b, "peak=%.1f Gbps idle-fraction=%.2f\n", f.PeakGbps, f.IdleFrac)
	fmt.Fprintf(&b, "rail 0, first 60 samples (Gbps):\n")
	for i := 0; i < 60 && i < len(f.Series[0]); i++ {
		fmt.Fprintf(&b, "%5.1f", f.Series[0][i])
		if (i+1)%15 == 0 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Fig09 is the RNIC traffic-matrix sparsity (Fig. 9a dense, 9b MoE).
type Fig09 struct {
	DenseDensity float64
	MoEDensity   float64
	DenseMaxDeg  int
	MoEMaxDeg    int
	Endpoints    int
}

// Fig09TrafficMatrix builds both 512-GPU matrices.
func Fig09TrafficMatrix() (Fig09, error) {
	dense, err := parallelism.TrafficMatrix(parallelism.Config{TP: 8, PP: 8, DP: 8}, 8)
	if err != nil {
		return Fig09{}, err
	}
	moe, err := parallelism.TrafficMatrix(parallelism.Config{TP: 8, PP: 8, DP: 8, EP: 4}, 8)
	if err != nil {
		return Fig09{}, err
	}
	maxDeg := func(m [][]int) int {
		best := 0
		for i := range m {
			d := 0
			for j := range m[i] {
				if m[i][j] != 0 {
					d++
				}
			}
			if d > best {
				best = d
			}
		}
		return best
	}
	return Fig09{
		DenseDensity: parallelism.MatrixDensity(dense),
		MoEDensity:   parallelism.MatrixDensity(moe),
		DenseMaxDeg:  maxDeg(dense),
		MoEMaxDeg:    maxDeg(moe),
		Endpoints:    len(dense),
	}, nil
}

// Render emits the sparsity summary.
func (f Fig09) Render() string {
	return fmt.Sprintf("Figure 9 — RNIC traffic matrices of a 512-GPU task\n"+
		"dense (TP8·PP8·DP8):  density=%.4f max-degree=%d of %d\n"+
		"MoE (TP8·PP8·DP8·EP4): density=%.4f max-degree=%d of %d\n",
		f.DenseDensity, f.DenseMaxDeg, f.Endpoints-1,
		f.MoEDensity, f.MoEMaxDeg, f.Endpoints-1)
}

// Fig12 is the job-size distribution (Fig. 12).
type Fig12 struct {
	Counts map[int]int
	Total  int
}

// Fig12JobSizes samples job GPU counts.
func Fig12JobSizes(seed int64, samples int) Fig12 {
	r := rand.New(rand.NewSource(seed))
	out := Fig12{Counts: map[int]int{}, Total: samples}
	for i := 0; i < samples; i++ {
		out.Counts[trace.JobGPUs(r)]++
	}
	return out
}

// Render emits the GPU-count shares.
func (f Fig12) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 — GPUs per training job\n")
	keys := make([]int, 0, len(f.Counts))
	for k := range f.Counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%5d GPUs: %6.2f%%\n", k, 100*float64(f.Counts[k])/float64(f.Total))
	}
	return b.String()
}
