package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Schedule(3*time.Second, "c", func(time.Duration) { got = append(got, "c") })
	e.Schedule(1*time.Second, "a", func(time.Duration) { got = append(got, "a") })
	e.Schedule(2*time.Second, "b", func(time.Duration) { got = append(got, "b") })
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, "x", func(time.Duration) { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events fired out of order: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := NewEngine(1)
	var fired time.Duration
	e.Schedule(5*time.Second, "outer", func(now time.Duration) {
		e.After(2*time.Second, "inner", func(now time.Duration) { fired = now })
	})
	e.Run()
	if fired != 7*time.Second {
		t.Fatalf("inner fired at %v, want 7s", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*time.Second, "x", func(time.Duration) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(1*time.Second, "past", func(time.Duration) {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Second, "x", func(time.Duration) { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var got []time.Duration
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Second
		e.Schedule(d, "x", func(now time.Duration) { got = append(got, now) })
	}
	e.RunUntil(3 * time.Second)
	if len(got) != 3 {
		t.Fatalf("fired %d events, want 3", len(got))
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
	e.RunUntil(10 * time.Second)
	if len(got) != 5 {
		t.Fatalf("fired %d events total, want 5", len(got))
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("clock advanced to %v, want deadline 10s", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var fires []time.Duration
	tk := e.Every(time.Second, 2*time.Second, "tick", func(now time.Duration) {
		fires = append(fires, now)
		if len(fires) == 3 {
			// Stop from within the callback.
		}
	})
	e.RunUntil(5 * time.Second)
	tk.Stop()
	e.RunUntil(20 * time.Second)
	if len(fires) != 3 {
		t.Fatalf("ticker fired %d times, want 3 (1s,3s,5s)", len(fires))
	}
	want := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tk *Ticker
	tk = e.Every(0, time.Second, "tick", func(now time.Duration) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.RunUntil(time.Minute)
	if count != 2 {
		t.Fatalf("ticker fired %d times after in-callback Stop, want 2", count)
	}
}

func TestRandStreamsIndependentAndDeterministic(t *testing.T) {
	a1 := NewEngine(42).Rand("alpha").Int63()
	a2 := NewEngine(42).Rand("alpha").Int63()
	if a1 != a2 {
		t.Fatal("same seed+name produced different draws")
	}
	b := NewEngine(42).Rand("beta").Int63()
	if a1 == b {
		t.Fatal("different stream names produced identical draws")
	}
	// Drawing from one stream must not perturb another.
	e := NewEngine(42)
	e.Rand("noise").Int63()
	e.Rand("noise").Int63()
	if got := e.Rand("alpha").Int63(); got != a1 {
		t.Fatal("stream alpha perturbed by draws on stream noise")
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 4; i++ {
		e.Schedule(time.Duration(i)*time.Second, "x", func(time.Duration) {})
	}
	if e.Pending() != 4 {
		t.Fatalf("pending = %d, want 4", e.Pending())
	}
	e.Step()
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", e.Pending())
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine(1)
	var evs []*Event
	for i := 0; i < 5; i++ {
		evs = append(evs, e.Schedule(time.Duration(i)*time.Second, "x", func(time.Duration) {}))
	}
	evs[1].Cancel()
	evs[3].Cancel()
	evs[3].Cancel() // double cancel must not double-count
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3 (cancelled events must not count)", e.Pending())
	}
	// Stepping reaps zombies without disturbing the count of live events.
	e.Step() // fires ev 0
	if e.Pending() != 2 {
		t.Fatalf("pending after step = %d, want 2", e.Pending())
	}
	e.Step() // skips cancelled ev 1, fires ev 2
	if e.Pending() != 1 {
		t.Fatalf("pending after second step = %d, want 1", e.Pending())
	}
	// Cancelling an already-fired event is a no-op on the count.
	evs[0].Cancel()
	if e.Pending() != 1 {
		t.Fatalf("pending after cancelling fired event = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending after drain = %d, want 0", e.Pending())
	}
}

func TestPendingWithTicker(t *testing.T) {
	e := NewEngine(1)
	tk := e.Every(time.Second, time.Second, "tick", func(time.Duration) {})
	e.RunUntil(3 * time.Second)
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (next ticker firing)", e.Pending())
	}
	tk.Stop()
	if e.Pending() != 0 {
		t.Fatalf("pending after ticker stop = %d, want 0", e.Pending())
	}
}
