// Package sim provides the discrete-event simulation kernel that all
// substrates in this repository run on: a virtual clock, an event heap,
// and deterministic, independently seeded random streams.
//
// SkeletonHunter's evaluation in the paper runs against a production
// cluster; here every component (control plane, traffic generator, fault
// injector, probing agents, analyzer windows) is driven by the same
// Engine so that experiments are reproducible down to the microsecond.
//
// Time is represented as time.Duration offsets from the simulation epoch.
// This keeps arithmetic exact (integer nanoseconds) and avoids the
// pitfalls of wall-clock time in tests.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. Events with equal times fire in the
// order they were scheduled (stable FIFO tie-break), which keeps
// simulations deterministic even when many events share a timestamp.
type Event struct {
	at   time.Duration
	seq  uint64
	name string
	fn   func(now time.Duration)

	eng      *Engine
	index    int // heap index; -1 once popped or cancelled
	canceled bool
}

// At returns the virtual time at which the event is scheduled.
func (e *Event) At() time.Duration { return e.at }

// Name returns the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e.canceled {
		return
	}
	e.canceled = true
	// Still queued: account for it so Pending stays truthful without a
	// heap sweep; the zombie entry is reaped when it reaches the top.
	if e.index >= 0 && e.eng != nil {
		e.eng.cancelled++
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; the simulated world is single-threaded by design
// (concurrency in the modeled system is expressed as interleaved events,
// which is what makes runs reproducible).
type Engine struct {
	now       time.Duration
	queue     eventHeap
	seq       uint64
	seed      int64
	stream    map[string]*rand.Rand
	cancelled int // cancelled-but-unreaped events still in the heap

	// Processed counts events that have fired, for introspection.
	Processed uint64
}

// NewEngine returns an Engine whose random streams all derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed, stream: make(map[string]*rand.Rand)}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the named deterministic random stream, creating it on
// first use. Distinct names yield independent streams, so adding a new
// consumer does not perturb the draws seen by existing ones — crucial
// for keeping figure outputs stable as the codebase grows.
func (e *Engine) Rand(name string) *rand.Rand {
	if r, ok := e.stream[name]; ok {
		return r
	}
	h := fnv64a(name)
	r := rand.New(rand.NewSource(e.seed ^ int64(h)))
	e.stream[name] = r
	return r
}

func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Schedule registers fn to run at absolute virtual time at. Scheduling
// in the past (before Now) panics: it would silently reorder causality.
func (e *Engine) Schedule(at time.Duration, name string, fn func(now time.Duration)) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule %q at %v before now %v", name, at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, name: name, fn: fn, eng: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, name string, fn func(now time.Duration)) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, name, fn)
}

// Every schedules fn to run periodically, first at start and then every
// period, until the returned Ticker is stopped or the engine drains.
func (e *Engine) Every(start, period time.Duration, name string, fn func(now time.Duration)) *Ticker {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	t := &Ticker{engine: e, period: period, name: name, fn: fn}
	t.next = e.Schedule(start, name, t.fire)
	return t
}

// Ticker is a recurring event created by Engine.Every.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	name    string
	fn      func(now time.Duration)
	next    *Event
	stopped bool
}

func (t *Ticker) fire(now time.Duration) {
	if t.stopped {
		return
	}
	t.fn(now)
	if !t.stopped { // fn may have stopped us
		t.next = t.engine.Schedule(now+t.period, t.name, t.fire)
	}
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
	}
}

// Step fires the earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			e.cancelled--
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn(e.now)
		return true
	}
	return false
}

// RunUntil processes events in order until the queue is exhausted or the
// next event is strictly after deadline. The clock is left at deadline
// (if reached) so subsequent scheduling is relative to it.
func (e *Engine) RunUntil(deadline time.Duration) {
	for e.queue.Len() > 0 {
		// Peek.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			e.cancelled--
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run processes every pending event (including events scheduled by
// events) until the queue drains. Use RunUntil for open-ended workloads
// such as periodic tickers, which never drain on their own.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Pending returns the number of live events still queued. Cancelled
// events linger in the heap until they surface (lazy reaping), but are
// subtracted here so the count is truthful.
func (e *Engine) Pending() int { return e.queue.Len() - e.cancelled }
