// Package component defines the shared component-identity namespace
// used across fault injection, localization and scoring. A localization
// verdict is "correct" when the component ID it names matches the one
// the injector perturbed (§7.1's localization accuracy), so both sides
// must agree on naming.
package component

import (
	"fmt"

	"skeletonhunter/internal/topology"
)

// Class is the paper's component taxonomy (Table 1): the six classes
// network issues were localized to in production.
type Class int

const (
	ClassInterHostNetwork Class = iota // physical links and switches
	ClassRNIC
	ClassHostBoard
	ClassVirtualSwitch
	ClassContainerRuntime
	ClassConfiguration
)

func (c Class) String() string {
	switch c {
	case ClassInterHostNetwork:
		return "inter-host-network"
	case ClassRNIC:
		return "rnic"
	case ClassHostBoard:
		return "host-board"
	case ClassVirtualSwitch:
		return "virtual-switch"
	case ClassContainerRuntime:
		return "container-runtime"
	case ClassConfiguration:
		return "configuration"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ID names one concrete component instance.
type ID string

// Link names a physical link.
func Link(l topology.LinkID) ID { return ID("link/" + string(l)) }

// Switch names a physical switch.
func Switch(n topology.NodeID) ID { return ID("switch/" + string(n)) }

// RNIC names a host's rail RNIC.
func RNIC(host, rail int) ID { return ID(fmt.Sprintf("rnic/h%d/r%d", host, rail)) }

// HostBoard names a host's board (PCIe/NVLink complex).
func HostBoard(host int) ID { return ID(fmt.Sprintf("hostboard/h%d", host)) }

// VSwitch names a host's virtual switch.
func VSwitch(host int) ID { return ID(fmt.Sprintf("vswitch/h%d", host)) }

// Container names a container runtime instance.
func Container(id string) ID { return ID("container/" + id) }

// HostConfig names a host-level configuration item.
func HostConfig(host int) ID { return ID(fmt.Sprintf("config/h%d", host)) }

// SwitchConfig names a switch-level configuration item.
func SwitchConfig(n topology.NodeID) ID { return ID("config/" + string(n)) }

// HostOf extracts the host index a component is bound to, for
// host-scoped components (RNICs, host boards, vswitches, host
// configs). It reports false for fabric-scoped components (links,
// switches) and containers.
func HostOf(id ID) (int, bool) {
	var h, r int
	for _, pattern := range []string{"rnic/h%d/r%d"} {
		if n, err := fmt.Sscanf(string(id), pattern, &h, &r); err == nil && n == 2 {
			return h, true
		}
	}
	for _, pattern := range []string{"hostboard/h%d", "vswitch/h%d", "config/h%d"} {
		if n, err := fmt.Sscanf(string(id), pattern, &h); err == nil && n == 1 {
			return h, true
		}
	}
	return 0, false
}
