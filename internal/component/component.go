// Package component defines the shared component-identity namespace
// used across fault injection, localization and scoring. A localization
// verdict is "correct" when the component ID it names matches the one
// the injector perturbed (§7.1's localization accuracy), so both sides
// must agree on naming.
package component

import (
	"fmt"
	"strings"

	"skeletonhunter/internal/topology"
)

// Class is the paper's component taxonomy (Table 1): the six classes
// network issues were localized to in production.
type Class int

const (
	ClassInterHostNetwork Class = iota // physical links and switches
	ClassRNIC
	ClassHostBoard
	ClassVirtualSwitch
	ClassContainerRuntime
	ClassConfiguration
)

func (c Class) String() string {
	switch c {
	case ClassInterHostNetwork:
		return "inter-host-network"
	case ClassRNIC:
		return "rnic"
	case ClassHostBoard:
		return "host-board"
	case ClassVirtualSwitch:
		return "virtual-switch"
	case ClassContainerRuntime:
		return "container-runtime"
	case ClassConfiguration:
		return "configuration"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ID names one concrete component instance.
type ID string

// Link names a physical link.
func Link(l topology.LinkID) ID { return ID("link/" + string(l)) }

// Switch names a physical switch.
func Switch(n topology.NodeID) ID { return ID("switch/" + string(n)) }

// RNIC names a host's rail RNIC.
func RNIC(host, rail int) ID { return ID(fmt.Sprintf("rnic/h%d/r%d", host, rail)) }

// HostBoard names a host's board (PCIe/NVLink complex).
func HostBoard(host int) ID { return ID(fmt.Sprintf("hostboard/h%d", host)) }

// VSwitch names a host's virtual switch.
func VSwitch(host int) ID { return ID(fmt.Sprintf("vswitch/h%d", host)) }

// Container names a container runtime instance.
func Container(id string) ID { return ID("container/" + id) }

// HostConfig names a host-level configuration item.
func HostConfig(host int) ID { return ID(fmt.Sprintf("config/h%d", host)) }

// SwitchConfig names a switch-level configuration item.
func SwitchConfig(n topology.NodeID) ID { return ID("config/" + string(n)) }

// ClassOf maps a concrete component instance onto the paper's six
// component classes (Table 1). Incident severity and routing key off
// the class, so the mapping must cover every ID constructor above.
// IDs outside the known namespaces fall into ClassConfiguration, the
// paper's catch-all for issues without a hardware locus.
func ClassOf(id ID) Class {
	s := string(id)
	switch {
	case strings.HasPrefix(s, "link/"), strings.HasPrefix(s, "switch/"):
		return ClassInterHostNetwork
	case strings.HasPrefix(s, "rnic/"):
		return ClassRNIC
	case strings.HasPrefix(s, "hostboard/"):
		return ClassHostBoard
	case strings.HasPrefix(s, "vswitch/"):
		return ClassVirtualSwitch
	case strings.HasPrefix(s, "container/"):
		return ClassContainerRuntime
	default:
		return ClassConfiguration
	}
}

// RNICOf extracts the (host, rail) pair of an RNIC component.
func RNICOf(id ID) (host, rail int, ok bool) {
	if n, err := fmt.Sscanf(string(id), "rnic/h%d/r%d", &host, &rail); err == nil && n == 2 {
		return host, rail, true
	}
	return 0, 0, false
}

// isSwitchName reports whether a name denotes an underlay switch node.
func isSwitchName(s string) bool {
	return strings.HasPrefix(s, "tor/") || strings.HasPrefix(s, "agg/") || strings.HasPrefix(s, "spine/")
}

// SwitchOf returns the underlay switch node a component is bound to:
// the node itself for switch components, and the configured node for
// switch-scoped configuration components (host configs report false).
func SwitchOf(id ID) (topology.NodeID, bool) {
	s := string(id)
	if rest, ok := strings.CutPrefix(s, "switch/"); ok {
		return topology.NodeID(rest), true
	}
	if rest, ok := strings.CutPrefix(s, "config/"); ok && isSwitchName(rest) {
		return topology.NodeID(rest), true
	}
	return "", false
}

// LinkOf returns the underlay link of a link component.
func LinkOf(id ID) (topology.LinkID, bool) {
	if rest, ok := strings.CutPrefix(string(id), "link/"); ok {
		return topology.LinkID(rest), true
	}
	return "", false
}

// LinkSwitches returns the switch endpoints of a link component's
// underlay link (zero, one, or both ends may be switches).
func LinkSwitches(id ID) []topology.NodeID {
	l, ok := LinkOf(id)
	if !ok {
		return nil
	}
	s := string(l)
	i := strings.Index(s, "--")
	if i < 0 {
		return nil
	}
	var out []topology.NodeID
	for _, end := range []string{s[:i], s[i+2:]} {
		if isSwitchName(end) {
			out = append(out, topology.NodeID(end))
		}
	}
	return out
}

// LinkHosts returns the host indices of a link component's NIC
// endpoints, in endpoint order: one host for a rail-attachment link
// (nic--tor), none for a switch-switch link.
func LinkHosts(id ID) []int {
	l, ok := LinkOf(id)
	if !ok {
		return nil
	}
	s := string(l)
	i := strings.Index(s, "--")
	if i < 0 {
		return nil
	}
	var out []int
	for _, end := range []string{s[:i], s[i+2:]} {
		var h, r int
		if n, err := fmt.Sscanf(end, "nic/h%d/r%d", &h, &r); err == nil && n == 2 {
			out = append(out, h)
		}
	}
	return out
}

// ContainerOf returns the container name of a container-runtime
// component — the cluster ContainerID ("<task>/c<idx>") when the
// localizer had control-plane access, or a raw "vni<N>/<ip>" overlay
// coordinate when it did not.
func ContainerOf(id ID) (string, bool) {
	return strings.CutPrefix(string(id), "container/")
}

// HostOf extracts the host index a component is bound to, for
// host-scoped components (RNICs, host boards, vswitches, host
// configs). It reports false for fabric-scoped components (links,
// switches) and containers.
func HostOf(id ID) (int, bool) {
	var h, r int
	for _, pattern := range []string{"rnic/h%d/r%d"} {
		if n, err := fmt.Sscanf(string(id), pattern, &h, &r); err == nil && n == 2 {
			return h, true
		}
	}
	for _, pattern := range []string{"hostboard/h%d", "vswitch/h%d", "config/h%d"} {
		if n, err := fmt.Sscanf(string(id), pattern, &h); err == nil && n == 1 {
			return h, true
		}
	}
	return 0, false
}
