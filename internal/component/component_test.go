package component

import (
	"testing"

	"skeletonhunter/internal/topology"
)

func TestIDConstructors(t *testing.T) {
	nic := topology.NIC{Host: 3, Rail: 5}
	link := topology.MakeLinkID(nic.ID(), topology.NodeID("tor/p0/r5"))
	cases := []struct {
		got  ID
		want string
	}{
		{Link(link), "link/nic/h3/r5--tor/p0/r5"},
		{Switch("tor/p0/r5"), "switch/tor/p0/r5"},
		{RNIC(3, 5), "rnic/h3/r5"},
		{HostBoard(3), "hostboard/h3"},
		{VSwitch(3), "vswitch/h3"},
		{Container("task-1/c2"), "container/task-1/c2"},
		{HostConfig(3), "config/h3"},
		{SwitchConfig("tor/p0/r5"), "config/tor/p0/r5"},
	}
	for _, c := range cases {
		if string(c.got) != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestIDsDistinct(t *testing.T) {
	// The namespace must keep component classes from colliding even on
	// the same underlying host/switch.
	ids := []ID{
		RNIC(1, 0), HostBoard(1), VSwitch(1), HostConfig(1), Container("h1"),
	}
	seen := map[ID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("collision at %q", id)
		}
		seen[id] = true
	}
}

func TestHostOf(t *testing.T) {
	cases := []struct {
		id   ID
		host int
		ok   bool
	}{
		{RNIC(3, 5), 3, true},
		{HostBoard(7), 7, true},
		{VSwitch(12), 12, true},
		{HostConfig(0), 0, true},
		{Switch("tor/p0/r5"), 0, false},
		{SwitchConfig("tor/p0/r5"), 0, false},
		{Link("nic/h3/r5--tor/p0/r5"), 0, false},
		{Container("task-1/c2"), 0, false},
	}
	for _, c := range cases {
		host, ok := HostOf(c.id)
		if ok != c.ok || (ok && host != c.host) {
			t.Errorf("HostOf(%q) = %d, %v; want %d, %v", c.id, host, ok, c.host, c.ok)
		}
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassInterHostNetwork: "inter-host-network",
		ClassRNIC:             "rnic",
		ClassHostBoard:        "host-board",
		ClassVirtualSwitch:    "virtual-switch",
		ClassContainerRuntime: "container-runtime",
		ClassConfiguration:    "configuration",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestClassOfCoversEveryConstructor(t *testing.T) {
	cases := []struct {
		id   ID
		want Class
	}{
		{Link("tor/0/0--agg/0/1"), ClassInterHostNetwork},
		{Switch("tor/0/0"), ClassInterHostNetwork},
		{RNIC(3, 1), ClassRNIC},
		{HostBoard(3), ClassHostBoard},
		{VSwitch(3), ClassVirtualSwitch},
		{Container("task-1/c2"), ClassContainerRuntime},
		{HostConfig(3), ClassConfiguration},
		{SwitchConfig("tor/0/0"), ClassConfiguration},
		{ID("something-else"), ClassConfiguration},
	}
	for _, c := range cases {
		if got := ClassOf(c.id); got != c.want {
			t.Errorf("ClassOf(%s) = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestEvidenceDispatchHelpers(t *testing.T) {
	if h, r, ok := RNICOf(RNIC(5, 2)); !ok || h != 5 || r != 2 {
		t.Fatalf("RNICOf: %d/%d/%v", h, r, ok)
	}
	if _, _, ok := RNICOf(VSwitch(5)); ok {
		t.Fatal("RNICOf matched a vswitch")
	}

	if sw, ok := SwitchOf(Switch("agg/0/1")); !ok || sw != "agg/0/1" {
		t.Fatalf("SwitchOf(switch): %s/%v", sw, ok)
	}
	if sw, ok := SwitchOf(SwitchConfig("spine/0")); !ok || sw != "spine/0" {
		t.Fatalf("SwitchOf(config): %s/%v", sw, ok)
	}
	if _, ok := SwitchOf(HostConfig(1)); ok {
		t.Fatal("SwitchOf matched a host config")
	}

	if l, ok := LinkOf(Link("a--b")); !ok || l != "a--b" {
		t.Fatalf("LinkOf: %s/%v", l, ok)
	}
	if _, ok := LinkOf(Switch("tor/0/0")); ok {
		t.Fatal("LinkOf matched a switch")
	}

	// Links: NIC--ToR has one switch end, ToR--agg has two, and a
	// malformed link has none.
	if got := LinkSwitches(Link("nic/h0/r3--tor/p0/r3")); len(got) != 1 || got[0] != "tor/p0/r3" {
		t.Fatalf("LinkSwitches(nic--tor): %v", got)
	}
	if got := LinkSwitches(Link("tor/p0/r3--agg/p0/a1")); len(got) != 2 {
		t.Fatalf("LinkSwitches(tor--agg): %v", got)
	}
	if got := LinkSwitches(ID("link/garbage")); got != nil {
		t.Fatalf("LinkSwitches(garbage): %v", got)
	}
	if got := LinkSwitches(RNIC(0, 0)); got != nil {
		t.Fatalf("LinkSwitches(non-link): %v", got)
	}

	if name, ok := ContainerOf(Container("task-1/c2")); !ok || name != "task-1/c2" {
		t.Fatalf("ContainerOf: %s/%v", name, ok)
	}
	if _, ok := ContainerOf(RNIC(0, 0)); ok {
		t.Fatal("ContainerOf matched an rnic")
	}
}
