package component

import (
	"testing"

	"skeletonhunter/internal/topology"
)

func TestIDConstructors(t *testing.T) {
	nic := topology.NIC{Host: 3, Rail: 5}
	link := topology.MakeLinkID(nic.ID(), topology.NodeID("tor/p0/r5"))
	cases := []struct {
		got  ID
		want string
	}{
		{Link(link), "link/nic/h3/r5--tor/p0/r5"},
		{Switch("tor/p0/r5"), "switch/tor/p0/r5"},
		{RNIC(3, 5), "rnic/h3/r5"},
		{HostBoard(3), "hostboard/h3"},
		{VSwitch(3), "vswitch/h3"},
		{Container("task-1/c2"), "container/task-1/c2"},
		{HostConfig(3), "config/h3"},
		{SwitchConfig("tor/p0/r5"), "config/tor/p0/r5"},
	}
	for _, c := range cases {
		if string(c.got) != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestIDsDistinct(t *testing.T) {
	// The namespace must keep component classes from colliding even on
	// the same underlying host/switch.
	ids := []ID{
		RNIC(1, 0), HostBoard(1), VSwitch(1), HostConfig(1), Container("h1"),
	}
	seen := map[ID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("collision at %q", id)
		}
		seen[id] = true
	}
}

func TestHostOf(t *testing.T) {
	cases := []struct {
		id   ID
		host int
		ok   bool
	}{
		{RNIC(3, 5), 3, true},
		{HostBoard(7), 7, true},
		{VSwitch(12), 12, true},
		{HostConfig(0), 0, true},
		{Switch("tor/p0/r5"), 0, false},
		{SwitchConfig("tor/p0/r5"), 0, false},
		{Link("nic/h3/r5--tor/p0/r5"), 0, false},
		{Container("task-1/c2"), 0, false},
	}
	for _, c := range cases {
		host, ok := HostOf(c.id)
		if ok != c.ok || (ok && host != c.host) {
			t.Errorf("HostOf(%q) = %d, %v; want %d, %v", c.id, host, ok, c.host, c.ok)
		}
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassInterHostNetwork: "inter-host-network",
		ClassRNIC:             "rnic",
		ClassHostBoard:        "host-board",
		ClassVirtualSwitch:    "virtual-switch",
		ClassContainerRuntime: "container-runtime",
		ClassConfiguration:    "configuration",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}
