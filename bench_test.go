// Benchmark harness: one benchmark per figure and table of the paper.
// Each benchmark regenerates its artifact and reports the headline
// shape quantities via b.ReportMetric, so `go test -bench=. -benchmem`
// doubles as the experiment reproduction run. cmd/figures prints the
// same artifacts as full tables.
package skeletonhunter_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"skeletonhunter/internal/analyzer"
	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/detect"
	"skeletonhunter/internal/figures"
	"skeletonhunter/internal/hcluster"
	"skeletonhunter/internal/localize"
	"skeletonhunter/internal/netsim"
	"skeletonhunter/internal/overlay"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/probe"
	"skeletonhunter/internal/sim"
	"skeletonhunter/internal/skeleton"
	"skeletonhunter/internal/stats"
	"skeletonhunter/internal/topology"
	"skeletonhunter/internal/traffic"
)

func BenchmarkFig02ContainerLifetime(b *testing.B) {
	var f figures.Fig02
	for i := 0; i < b.N; i++ {
		f = figures.Fig02ContainerLifetime(1, 5000)
	}
	b.ReportMetric(f.CDF[0][2], "P(small≤60min)")
	b.ReportMetric(f.CDF[2][2], "P(large≤60min)")
}

func BenchmarkFig03LifetimeByConfig(b *testing.B) {
	var f figures.Fig03
	for i := 0; i < b.N; i++ {
		f = figures.Fig03LifetimeByConfig(1, 5000)
	}
	b.ReportMetric(f.CDF[0][2], "P(lowend≤60min)")
	b.ReportMetric(f.CDF[2][2], "P(highend≤60min)")
}

func BenchmarkFig04StartupTime(b *testing.B) {
	var f figures.Fig04
	for i := 0; i < b.N; i++ {
		f = figures.Fig04StartupTime(1)
	}
	last := f.Startup[5]
	b.ReportMetric(last[len(last)-1].Seconds(), "tail-startup-s")
}

func BenchmarkFig05RNICsPerContainer(b *testing.B) {
	var f figures.Fig05
	for i := 0; i < b.N; i++ {
		f = figures.Fig05RNICsPerContainer(1, 20000)
	}
	b.ReportMetric(float64(f.Counts[8])/float64(f.Total), "share-8rnic")
}

func BenchmarkFig06FlowTableItems(b *testing.B) {
	var f figures.Fig06
	for i := 0; i < b.N; i++ {
		f = figures.Fig06FlowTableItems(1, 20000)
	}
	b.ReportMetric(f.Mean, "mean-items")
	b.ReportMetric(float64(f.Max), "max-items")
}

func BenchmarkFig07BurstCycles(b *testing.B) {
	var f figures.Fig07
	for i := 0; i < b.N; i++ {
		f = figures.Fig07BurstCycles(1)
	}
	b.ReportMetric(f.PeakGbps, "peak-gbps")
	b.ReportMetric(f.IdleFrac, "idle-frac")
}

func BenchmarkFig09TrafficMatrix(b *testing.B) {
	var f figures.Fig09
	var err error
	for i := 0; i < b.N; i++ {
		f, err = figures.Fig09TrafficMatrix()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.DenseDensity, "dense-density")
	b.ReportMetric(f.MoEDensity, "moe-density")
}

func BenchmarkFig12JobSizes(b *testing.B) {
	var f figures.Fig12
	for i := 0; i < b.N; i++ {
		f = figures.Fig12JobSizes(1, 20000)
	}
	b.ReportMetric(float64(f.Counts[512])/float64(f.Total), "share-512gpu")
}

func BenchmarkFig13STFTFeatures(b *testing.B) {
	var f figures.Fig13
	for i := 0; i < b.N; i++ {
		f = figures.Fig13STFTFeatures(1)
	}
	b.ReportMetric(f.DistAB, "within-class-dist")
	b.ReportMetric(f.DistAC, "cross-class-dist")
}

func BenchmarkFig14LongTermTracking(b *testing.B) {
	var f figures.Fig14
	var err error
	for i := 0; i < b.N; i++ {
		f, err = figures.Fig14LongTermTracking(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	rejected := 0
	for _, w := range f.Windows {
		if w.Rejected {
			rejected++
		}
	}
	b.ReportMetric(float64(rejected), "windows-rejected")
}

func BenchmarkFig15ProbingScale(b *testing.B) {
	var f figures.Fig15
	var err error
	for i := 0; i < b.N; i++ {
		f, err = figures.Fig15ProbingScale()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := f.Rows[len(f.Rows)-1]
	b.ReportMetric(float64(last.FullMesh)/float64(last.Basic), "fullmesh/basic")
	b.ReportMetric(float64(last.Basic)/float64(last.Skeleton), "basic/skeleton")
	b.ReportMetric(100*last.SkeletonReduction, "skeleton-reduction-%")
}

func BenchmarkFig16ProbingTime(b *testing.B) {
	var f figures.Fig16
	var err error
	for i := 0; i < b.N; i++ {
		f, err = figures.Fig16ProbingTime()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := f.Rows[len(f.Rows)-1]
	b.ReportMetric(last.FullMesh.Seconds(), "fullmesh-round-s")
	b.ReportMetric(last.Basic.Seconds(), "basic-round-s")
	b.ReportMetric(last.Skeleton.Seconds(), "skeleton-round-s")
}

func BenchmarkFig17AgentOverhead(b *testing.B) {
	var f figures.Fig17
	for i := 0; i < b.N; i++ {
		f = figures.Fig17AgentOverhead()
	}
	n := len(f.Ages)
	b.ReportMetric(f.CPU[n-1], "steady-cpu-%")
	b.ReportMetric(f.MemMB[n-1], "steady-mem-MB")
}

func BenchmarkFig18CaseStudy(b *testing.B) {
	var f figures.Fig18
	var err error
	for i := 0; i < b.N; i++ {
		f, err = figures.Fig18CaseStudy(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.DetectionLatency.Seconds(), "detection-latency-s")
	b.ReportMetric((f.RecoverAt - f.IsolateAt).Seconds(), "recovery-s")
}

func BenchmarkTable1IssueCatalog(b *testing.B) {
	var t figures.Table1
	var err error
	for i := 0; i < b.N; i++ {
		t, err = figures.Table1IssueCatalog(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.Detected()), "detected/19")
	b.ReportMetric(float64(t.Localized()), "localized/19")
}

func BenchmarkHeadlineAccuracy(b *testing.B) {
	var h figures.Headline
	var err error
	for i := 0; i < b.N; i++ {
		h, err = figures.HeadlineAccuracy(1, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*h.Report.Precision(), "precision-%")
	b.ReportMetric(100*h.Report.Recall(), "recall-%")
	b.ReportMetric(100*h.Report.LocalizationAccuracy(), "localization-%")
	b.ReportMetric(h.Report.MeanDetectionLatency.Seconds(), "mean-detect-s")
}

func BenchmarkFailureRateReduction(b *testing.B) {
	var f figures.FailureRate
	var err error
	for i := 0; i < b.N; i++ {
		f, err = figures.FailureRateReduction(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(f.Before), "failures-before/month")
	b.ReportMetric(float64(f.After), "failures-after/month")
	b.ReportMetric(f.ReductionPct, "reduction-%")
}

func BenchmarkTrainingImpact(b *testing.B) {
	var im figures.Impact
	var err error
	for i := 0; i < b.N; i++ {
		im, err = figures.TrainingImpact(1, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(im.FailedWithout), "jobs-failed-without")
	b.ReportMetric(float64(im.FailedWith), "jobs-failed-with")
	b.ReportMetric(float64(im.IterationsWith), "rounds-with")
}

// BenchmarkSkeletonInference512 measures full-pipeline inference cost
// at the paper's headline scale (512 endpoints): STFT fingerprinting +
// constrained clustering + stage ordering. The paper picked STFT for
// its low runtime cost (§5.1); this is that cost, end to end.
func BenchmarkSkeletonInference512(b *testing.B) {
	par := parallelism.Config{TP: 8, PP: 8, DP: 8}
	gen := &traffic.Generator{Par: par, GPUsPerContainer: 8, Seed: 17, IterPeriod: 60 * time.Second}
	var eps []skeleton.EndpointSeries
	for _, ep := range gen.Endpoints() {
		eps = append(eps, skeleton.EndpointSeries{
			Container: ep.Container, Rail: ep.Rail, Host: ep.Container,
			Series: gen.Series(ep, 1800*time.Second),
		})
	}
	b.ResetTimer()
	var inf skeleton.Inference
	var err error
	for i := 0; i < b.N; i++ {
		inf, err = skeleton.Infer(eps, skeleton.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(inf.DP), "inferred-DP")
	b.ReportMetric(float64(inf.PP), "inferred-PP")
	b.ReportMetric(float64(len(inf.Pairs)), "skeleton-pairs")
}

// --- Ablations (DESIGN.md §4) ---

// seriesWithJitter builds inference input with the given inter-replica
// phase jitter (different DP replicas drift slightly in burst phase —
// the regime that separates the feature/constraint choices).
func seriesWithJitter(par parallelism.Config, jitter int, seed int64) ([]skeleton.EndpointSeries, *traffic.Generator) {
	gen := &traffic.Generator{Par: par, GPUsPerContainer: 8, Seed: seed, PhaseJitterSamples: jitter}
	var eps []skeleton.EndpointSeries
	for _, ep := range gen.Endpoints() {
		eps = append(eps, skeleton.EndpointSeries{
			Container: ep.Container, Rail: ep.Rail, Host: ep.Container,
			Series: gen.Series(ep, 900*time.Second),
		})
	}
	return eps, gen
}

func inferencePurity(eps []skeleton.EndpointSeries, gen *traffic.Generator, opts skeleton.Options) (purity float64, inf skeleton.Inference) {
	inf, err := skeleton.Infer(eps, opts)
	if err != nil {
		return 0, inf
	}
	correct, total := 0, 0
	for _, g := range inf.Groups {
		counts := map[traffic.Position]int{}
		for _, m := range g {
			pos, _ := gen.PositionOf(parallelism.Endpoint{Container: eps[m].Container, Rail: eps[m].Rail})
			counts[pos]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		correct += best
		total += len(g)
	}
	return float64(correct) / float64(total), inf
}

// BenchmarkAblationSTFT compares skeleton-inference grouping purity
// with STFT fingerprints versus raw time-domain features under
// realistic inter-replica phase jitter (§5.1's feature-choice
// rationale): magnitude spectra are phase-invariant, raw series are
// not.
func BenchmarkAblationSTFT(b *testing.B) {
	par := parallelism.Config{TP: 8, PP: 4, DP: 4}
	eps, gen := seriesWithJitter(par, 2, 5)
	var stft, td float64
	for i := 0; i < b.N; i++ {
		stft, _ = inferencePurity(eps, gen, skeleton.Options{})
		td, _ = inferencePurity(eps, gen, skeleton.Options{TimeDomainFeatures: true})
	}
	b.ReportMetric(100*stft, "stft-purity-%")
	b.ReportMetric(100*td, "timedomain-purity-%")
}

// BenchmarkAblationConstraints compares constrained (Eq. 1–3) versus
// unconstrained clustering in the degraded-feature regime (time-domain
// + jitter): the constraints force a structurally valid partition
// (balanced group sizes whose count divides N, so a DP estimate
// exists), while unconstrained clustering over-splits into an
// uninterpretable shape.
func BenchmarkAblationConstraints(b *testing.B) {
	par := parallelism.Config{TP: 8, PP: 4, DP: 4} // true DP = 4
	eps, gen := seriesWithJitter(par, 2, 5)
	opts := skeleton.Options{TimeDomainFeatures: true}
	var conVar, unconVar float64
	var conDP, unconDP int
	for i := 0; i < b.N; i++ {
		_, con := inferencePurity(eps, gen, opts)
		unconOpts := opts
		unconOpts.Unconstrained = true
		_, uncon := inferencePurity(eps, gen, unconOpts)
		conVar = hcluster.GroupSizeVariance(con.Groups)
		unconVar = hcluster.GroupSizeVariance(uncon.Groups)
		conDP, unconDP = con.DP, uncon.DP
	}
	b.ReportMetric(conVar, "constrained-size-var")
	b.ReportMetric(unconVar, "unconstrained-size-var")
	b.ReportMetric(float64(conDP), "constrained-inferred-DP")
	b.ReportMetric(float64(unconDP), "unconstrained-inferred-DP")
}

// BenchmarkAblationActivation quantifies the startup false probes that
// incremental ping-list activation avoids: during a task's phased
// startup, an immediate-activation prober loses every probe aimed at a
// not-yet-started container, each a would-be false unconnectivity.
func BenchmarkAblationActivation(b *testing.B) {
	var immediateLost, incrementalLost int
	for i := 0; i < b.N; i++ {
		immediateLost, incrementalLost = 0, 0
		eng := sim.NewEngine(3)
		fab, err := topology.New(topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2})
		if err != nil {
			b.Fatal(err)
		}
		ovl := overlay.NewNetwork()
		cp := cluster.NewControlPlane(eng, fab, ovl, cluster.DefaultLagModel())
		task, err := cp.Submit(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
		if err != nil {
			b.Fatal(err)
		}
		net := netsim.New(eng, fab, ovl)
		// Sample each second of the startup phase.
		for tick := 0; tick < 240; tick++ {
			eng.RunUntil(eng.Now() + time.Second)
			for _, src := range task.Containers {
				if src.State != cluster.Running {
					continue
				}
				for _, dst := range task.Containers {
					if dst == src {
						continue
					}
					// Immediate activation probes regardless of dst state.
					if net.Probe(src.Addrs[0], dst.Addrs[0], uint64(tick)).Lost {
						immediateLost++
					}
					// Incremental activation probes only Running peers —
					// and those probes succeed.
					if dst.State == cluster.Running {
						if net.Probe(src.Addrs[0], dst.Addrs[0], uint64(tick)).Lost {
							incrementalLost++
						}
					}
				}
			}
		}
	}
	b.ReportMetric(float64(immediateLost), "immediate-false-lost")
	b.ReportMetric(float64(incrementalLost), "incremental-false-lost")
}

// BenchmarkAblationDisentangle compares the component inspections of
// optimistic overlay–underlay disentanglement against the exhaustive
// X×Y×Z sweep of the multiplicative effect (§1, §3).
func BenchmarkAblationDisentangle(b *testing.B) {
	// A production-shaped task: 128 containers × 8 RNICs × 16 virtual
	// components per RNIC (the paper's example reaches 128K at 1K
	// containers).
	const containers, rnics, virt = 128, 8, 16
	exhaustive := containers * rnics * virt
	// Optimistic: overlay chain (≈6 components) + tomography over the
	// evidence paths (≈2 links × pairs, bounded by vote table size) +
	// one offload dump (rails entries).
	optimistic := 6 + 2*rnics + rnics
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = float64(exhaustive) / float64(optimistic)
	}
	b.ReportMetric(float64(exhaustive), "exhaustive-inspections")
	b.ReportMetric(float64(optimistic), "optimistic-inspections")
	b.ReportMetric(ratio, "reduction-x")
}

// BenchmarkAblationLongTerm shows that gradual degradation evades the
// short-term LOF detector but is caught by the long-term Z-test
// (Fig. 14's purpose): latency creeps +0.3 % per window, slow enough
// that every window clusters into its look-back, yet after an hour the
// distribution has clearly left the fitted reference.
func BenchmarkAblationLongTerm(b *testing.B) {
	runOnce := func(longTerm bool) (short, long bool) {
		cfg := detect.Config{}
		if !longTerm {
			cfg.ZThreshold = 1e18 // effectively disables the Z-test
		}
		d := detect.New(cfg, func(a detect.Anomaly) {
			switch a.Type {
			case detect.LatencyShortTerm:
				short = true
			case detect.LatencyLongTerm:
				long = true
			}
		})
		key := detect.PairKey{Task: "drift", DstContainer: 1}
		r := rand.New(rand.NewSource(9))
		median := 16.0
		at := time.Duration(0)
		for at < 2*time.Hour {
			dist := stats.LogNormal{Mu: math.Log(median), Sigma: 0.08}
			for i := 0; i < 30; i++ {
				rtt := time.Duration(dist.Sample(r) * float64(time.Microsecond))
				d.Observe(key, at, rtt, false)
				at += time.Second
			}
			median *= 1.003 // +0.3 % per 30 s window
		}
		d.Flush(at)
		return short, long
	}
	var shortOnly, longSeen bool
	for i := 0; i < b.N; i++ {
		shortOnly, _ = runOnce(false)
		_, longSeen = runOnce(true)
	}
	b.ReportMetric(boolMetric(longSeen), "detected-with-longterm")
	b.ReportMetric(boolMetric(shortOnly), "detected-shortterm-only")
}

// BenchmarkAblationCUSUMvsLOF compares the sequential (per-sample)
// CUSUM detector against the windowed LOF on the same moderate latency
// shift: CUSUM reacts in a handful of samples, LOF waits for its
// 30-sample window to close. The production system prefers LOF (no
// parametric reference, robust to multimodal histories); this
// quantifies what that choice costs in reaction time.
func BenchmarkAblationCUSUMvsLOF(b *testing.B) {
	healthy := stats.LogNormal{Mu: math.Log(16), Sigma: 0.1}
	shifted := stats.LogNormal{Mu: math.Log(22), Sigma: 0.1}
	var cusumSamples, lofSamples float64
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(6))
		c := detect.NewCUSUM(healthy.Mu, healthy.Sigma)
		cusumSamples = 300
		for s := 0; s < 300; s++ {
			if c.Observe(shifted.Sample(r)) {
				cusumSamples = float64(s + 1)
				break
			}
		}
		// LOF detects at the close of the first fully-shifted window.
		lofSamples = 30
	}
	b.ReportMetric(cusumSamples, "cusum-samples-to-detect")
	b.ReportMetric(lofSamples, "lof-samples-to-detect")
}

// --- Analysis-plane pipeline (DESIGN.md §analysis-plane) ---

// benchAnalyzerRound drives the sharded analysis plane at a
// production-shaped load: 16 concurrent task shards, each ingesting a
// full 30-sample detection window for 24 pairs per round (11,520
// records per round), then running one analysis round. Healthy RTTs
// keep the localizer mostly out of the loop so the numbers isolate
// the ingest→window→detect path that dominates steady-state cost.
func benchAnalyzerRound(b *testing.B, workers int) {
	const (
		tasks            = 16
		pairsPerTask     = 24
		samplesPerWindow = 30
	)
	eng := sim.NewEngine(7)
	fab, err := topology.New(topology.Spec{Pods: 1, HostsPerPod: 8, Rails: 8, AggPerPod: 2})
	if err != nil {
		b.Fatal(err)
	}
	ovl := overlay.NewNetwork()
	cp := cluster.NewControlPlane(eng, fab, ovl, cluster.DefaultLagModel())
	net := netsim.New(eng, fab, ovl)
	loc := localize.NewWithControlPlane(net, cp)
	an := analyzer.New(eng, loc, analyzer.Config{Workers: workers})

	taskIDs := make([]cluster.TaskID, tasks)
	for i := range taskIDs {
		taskIDs[i] = cluster.TaskID(fmt.Sprintf("bench-task-%02d", i))
	}
	dist := stats.LogNormal{Mu: math.Log(16), Sigma: 0.1}
	r := rand.New(rand.NewSource(5))
	batch := make(probe.Batch, 0, pairsPerTask*samplesPerWindow)
	at := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range taskIDs {
			batch = batch[:0]
			for p := 0; p < pairsPerTask; p++ {
				for s := 0; s < samplesPerWindow; s++ {
					batch = append(batch, probe.Record{
						Task:         id,
						SrcContainer: p, SrcRail: p % 8,
						DstContainer: p + 1, DstRail: p % 8,
						At:  at + time.Duration(s)*time.Second,
						RTT: time.Duration(dist.Sample(r) * float64(time.Microsecond)),
					})
				}
			}
			an.IngestBatch(batch)
		}
		at += samplesPerWindow * time.Second
		an.Round(at)
	}
	b.StopTimer()
	total := float64(b.N) * tasks * pairsPerTask * samplesPerWindow
	b.ReportMetric(total/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(an.Shards()), "shards")
	// Healthy iid load: long runs may see the odd statistical-outlier
	// window flag, which is fine — it exercises the localize stage too.
	b.ReportMetric(float64(len(an.Alarms())), "alarms")
}

// BenchmarkAnalyzerRoundSerial pins the round fan-out to one worker —
// the pre-refactor serial baseline.
func BenchmarkAnalyzerRoundSerial(b *testing.B) { benchAnalyzerRound(b, 1) }

// BenchmarkAnalyzerRoundSharded lets the round fan out across
// GOMAXPROCS workers; alarms are bit-identical to the serial run (see
// internal/hunter determinism tests), only wall-clock differs.
func BenchmarkAnalyzerRoundSharded(b *testing.B) { benchAnalyzerRound(b, 0) }

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
