// Package skeletonhunter is a from-scratch Go reproduction of
// SkeletonHunter (SIGCOMM 2025): a container-network monitoring and
// diagnosis system for large-model training that infers traffic
// skeletons from RNIC burst cycles to prune its probing matrix, detects
// connectivity anomalies with short-term LOF and long-term lognormal
// Z-testing, and localizes failures by optimistic overlay–underlay
// disentanglement.
//
// The public surface lives under internal/ packages wired together by
// internal/hunter (the deployment façade); cmd/skeletonhunter runs a
// full simulated deployment and cmd/figures regenerates every figure
// and table of the paper. See README.md, DESIGN.md and EXPERIMENTS.md.
package skeletonhunter
