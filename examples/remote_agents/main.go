// Remote agents: exercise the real deployment path — the controller
// serves ping lists over TCP with per-task HMAC authentication (§6),
// and agents running as separate goroutines (standing in for sidecar
// processes) register, fetch targets, probe, and stream reports back
// over the wire.
//
//	go run ./examples/remote_agents
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/hunter"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/transport"
)

func main() {
	d, err := hunter.New(hunter.Options{Seed: 5, Hosts: 8})
	if err != nil {
		log.Fatal(err)
	}
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		log.Fatal(err)
	}
	d.Run(15 * time.Minute) // containers running

	srv, err := d.ServeTransport("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("controller serving on %s\n", srv.Addr())

	secret, _ := d.TaskSecret(task.ID)

	// One wire-connected agent per container.
	var wg sync.WaitGroup
	for _, c := range task.Containers {
		wg.Add(1)
		go func(container int) {
			defer wg.Done()
			cli, err := transport.Dial(srv.Addr(), string(task.ID), container, secret)
			if err != nil {
				log.Printf("agent %d: %v", container, err)
				return
			}
			defer cli.Close()
			if err := cli.Register(); err != nil {
				log.Printf("agent %d register: %v", container, err)
				return
			}
			targets, err := cli.PingList()
			if err != nil {
				log.Printf("agent %d pinglist: %v", container, err)
				return
			}
			// Probe each target through the simulated data plane and
			// report the measurements over the wire.
			var reports []transport.ProbeReport
			for i, tg := range targets {
				src := task.Containers[tg.SrcContainer].Addrs[tg.SrcRail]
				dst := task.Containers[tg.DstContainer].Addrs[tg.DstRail]
				res := d.Net.Probe(src, dst, uint64(i))
				var path []string
				for _, l := range res.UnderlayPath {
					path = append(path, string(l))
				}
				reports = append(reports, transport.ProbeReport{
					SrcContainer: tg.SrcContainer, SrcRail: tg.SrcRail,
					DstContainer: tg.DstContainer, DstRail: tg.DstRail,
					AtNanos:  int64(d.Engine.Now()),
					RTTNanos: int64(res.RTT),
					Lost:     res.Lost,
					Path:     path,
				})
			}
			if err := cli.Report(reports); err != nil {
				log.Printf("agent %d report: %v", container, err)
				return
			}
			fmt.Printf("agent c%d: %d targets probed and reported over TCP\n", container, len(targets))
		}(c.Index)
	}
	wg.Wait()

	// A forged client (wrong secret) is locked out.
	evil, err := transport.Dial(srv.Addr(), string(task.ID), 0, transport.Secret("forged"))
	if err != nil {
		log.Fatal(err)
	}
	defer evil.Close()
	if _, err := evil.PingList(); err != nil {
		fmt.Printf("forged tenant rejected: %v\n", err)
	}

	fmt.Printf("log service retained %d probe records for %s\n",
		len(d.Log.ByTask(string(task.ID), 0)), task.ID)
}
