// Skeleton inference: recover a tenant's (private) parallelism
// configuration from nothing but per-RNIC throughput time series, for
// a dense task and an MoE task, and show the resulting ping-list
// reduction.
//
//	go run ./examples/skeleton_inference
package main

import (
	"fmt"
	"log"
	"time"

	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/skeleton"
	"skeletonhunter/internal/traffic"
)

func infer(name string, par parallelism.Config) {
	fmt.Printf("== %s task (true config %s, hidden from the inferrer)\n", name, par)

	// What the CSP can see: RNIC throughput counters at 1 s granularity
	// (here synthesized by the traffic model) plus container placement.
	gen := &traffic.Generator{Par: par, GPUsPerContainer: 8, Seed: 99}
	var eps []skeleton.EndpointSeries
	for _, ep := range gen.Endpoints() {
		eps = append(eps, skeleton.EndpointSeries{
			Container: ep.Container,
			Rail:      ep.Rail,
			Host:      ep.Container, // one container per host in production
			Series:    gen.Series(ep, 900*time.Second),
		})
	}

	inf, err := skeleton.Infer(eps, skeleton.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   inferred: DP=%d, TP×PP=%d (TP=%d, PP=%d)\n", inf.DP, inf.TPxPP, inf.TP, inf.PP)

	// Coverage versus the ground-truth traffic pairs.
	truth, err := parallelism.SkeletonPairs(par, 8)
	if err != nil {
		log.Fatal(err)
	}
	index := map[parallelism.Endpoint]int{}
	for i, ep := range eps {
		index[parallelism.Endpoint{Container: ep.Container, Rail: ep.Rail}] = i
	}
	inferred := map[skeleton.Pair]bool{}
	for _, p := range inf.Pairs {
		inferred[p] = true
	}
	covered := 0
	for pr := range truth {
		a, b := index[pr[0]], index[pr[1]]
		if b < a {
			a, b = b, a
		}
		if inferred[skeleton.Pair{A: a, B: b}] {
			covered++
		}
	}
	containers := par.NumGPUs() / 8
	basic := containers * (containers - 1) * 8 // rail-pruned full mesh
	fmt.Printf("   skeleton: %d probe pairs, covering %d/%d true traffic pairs\n",
		len(inf.Pairs), covered, len(truth))
	fmt.Printf("   ping list: %d basic targets → %d skeleton targets (%.1f%% further reduction)\n\n",
		basic, 2*len(inf.Pairs), 100*(1-float64(2*len(inf.Pairs))/float64(basic)))
}

func main() {
	infer("dense", parallelism.Config{TP: 8, PP: 4, DP: 4})
	infer("MoE", parallelism.Config{TP: 8, PP: 2, DP: 4, EP: 2})
}
