// Failure drill: inject every one of the paper's 19 Table-1 issue
// types into fresh deployments and report, per type, whether
// SkeletonHunter detected it, localized it to the right component, and
// how fast.
//
//	go run ./examples/failure_drill [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"skeletonhunter/internal/figures"
)

func main() {
	seed := flag.Int64("seed", 7, "simulation seed")
	flag.Parse()

	fmt.Println("running the 19-issue failure drill (one fresh deployment per issue)…")
	start := time.Now()
	tab, err := figures.Table1IssueCatalog(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.Render())
	fmt.Printf("\nwall-clock: %v for 19 simulated incidents (~8 simulated minutes each)\n",
		time.Since(start).Round(time.Millisecond))

	for _, r := range tab.Rows {
		if !r.Detected || !r.Localized {
			fmt.Printf("NOTE: issue %d (%s) was not fully handled — see EXPERIMENTS.md\n",
				r.Issue.Type, r.Issue.Name)
		}
	}
}
