// Incident console walkthrough: run a monitored training cloud with
// the operator query API enabled, break a switch port, and follow the
// resulting incident through its lifecycle the way an operator would —
// over HTTP.
//
//	go run ./examples/incident_console
//
// The walkthrough covers the full read plane: the incident list, the
// per-incident evidence bundle (supporting probe records, switch queue
// context, localization verdicts), the blacklist, and ETag
// revalidation (a dashboard polling an unchanged incident list gets
// 304 Not Modified, not a re-download).
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/hunter"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/topology"
)

func main() {
	// Same small cloud as the quickstart, plus the query API on a
	// loopback port.
	d, err := hunter.New(hunter.Options{Seed: 42, Hosts: 8, HTTPAddr: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	defer d.API.Close()
	base := "http://" + d.API.Addr()
	fmt.Printf("query API listening at %s\n", base)

	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		log.Fatal(err)
	}
	d.Run(15 * time.Minute) // phased startup + detector history
	fmt.Printf("task %s: %d containers running\n", task.ID, len(task.RunningContainers()))

	// Before anything breaks the incident list is empty — and a
	// revalidating poll of it is a 304.
	body, quietEtag := get(base + "/v1/incidents")
	fmt.Printf("\n$ curl %s/v1/incidents\n%s", base, body)
	status := revalidate(base+"/v1/incidents", quietEtag)
	fmt.Printf("$ curl -H 'If-None-Match: %s' %s/v1/incidents  → %s\n", quietEtag, base, status)

	// Break the ToR-side port of container 0's rail-3 RNIC.
	addr := task.Containers[0].Addrs[3]
	nic := topology.NIC{Host: addr.Host, Rail: addr.Rail}
	link := topology.MakeLinkID(nic.ID(), d.Fabric.ToR(d.Fabric.PodOf(addr.Host), addr.Rail))
	in, err := d.Injector.Inject(faults.SwitchPortDown, faults.Target{Link: link})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nt=%v: injected %q on %v\n", d.Engine.Now().Round(time.Second), in.Info.Name, in.Components)

	d.Run(3 * time.Minute) // detection, localization, auto-mitigation

	// The alarm stream has been folded into incidents; pick the first.
	incs := d.Incidents.Incidents()
	if len(incs) == 0 {
		log.Fatal("no incident raised")
	}
	body, _ = get(base + "/v1/incidents")
	fmt.Printf("\n$ curl %s/v1/incidents\n%s", base, body)
	status = revalidate(base+"/v1/incidents", quietEtag)
	fmt.Printf("$ curl -H 'If-None-Match: %s' …  → %s (list changed)\n", quietEtag, status)

	detail, _ := get(base + "/v1/incidents/" + incs[0].ID)
	fmt.Printf("\n$ curl %s/v1/incidents/%s\n%s", base, incs[0].ID, trim(detail, 40))

	blk, _ := get(base + "/v1/blacklist")
	fmt.Printf("\n$ curl %s/v1/blacklist\n%s", base, blk)

	// Repair the port and wait out the quiet window: the mitigated
	// incident resolves once its component stays silent.
	d.Injector.Clear(in)
	d.Run(7 * time.Minute)

	for _, in := range d.Incidents.Incidents() {
		fmt.Printf("incident %s [%s/%s] %s: %d alarms, mitigated by %q after %s, resolved at t=%v\n",
			in.ID, in.Severity, in.Class, in.Component, in.AlarmCount,
			in.Mitigation, in.TimeToMitigate.Round(time.Second), in.ResolvedAt.Round(time.Second))
	}
}

// get fetches a resource and returns its body and ETag.
func get(url string) (string, string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	return string(b), resp.Header.Get("ETag")
}

// revalidate issues a conditional GET and reports the status line.
func revalidate(url, etag string) string {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.Status
}

// trim keeps the first n lines of a body so evidence bundles don't
// flood the walkthrough.
func trim(s string, n int) string {
	lines := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines++
			if lines == n {
				return s[:i+1] + "  …\n"
			}
		}
	}
	return s
}
