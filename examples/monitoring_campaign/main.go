// Monitoring campaign: a reduced-scale version of the paper's
// six-month production evaluation (§7.1). Injects rounds of failures
// spanning the full issue catalog into a live deployment, scores
// precision/recall/localization accuracy against ground truth, and
// verifies that orthogonal intra-host incidents stay out of scope.
//
//	go run ./examples/monitoring_campaign [-rounds 2] [-seed 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"skeletonhunter/internal/figures"
)

func main() {
	rounds := flag.Int("rounds", 1, "passes over the 19-issue catalog")
	seed := flag.Int64("seed", 3, "simulation seed")
	flag.Parse()

	fmt.Printf("running %d round(s) over the issue catalog…\n", *rounds)
	start := time.Now()
	h, err := figures.HeadlineAccuracy(*seed, *rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(h.Render())
	fmt.Printf("\npaper reference: precision 98.2%%, recall 99.3%%, localization accuracy 95.7%%, mean detection 8 s\n")
	fmt.Printf("(absolute latency differs: our analysis rounds are 30 s; the paper batches at finer granularity)\n")
	fmt.Printf("wall-clock: %v\n", time.Since(start).Round(time.Millisecond))
}
