// Quickstart: bring up a simulated containerized training cloud with
// SkeletonHunter monitoring, break one switch port, and watch the
// system detect, localize and blacklist it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"skeletonhunter/internal/cluster"
	"skeletonhunter/internal/faults"
	"skeletonhunter/internal/hunter"
	"skeletonhunter/internal/parallelism"
	"skeletonhunter/internal/topology"
)

func main() {
	// A small cloud: 8 hosts, 8 rail-attached RNICs each.
	d, err := hunter.New(hunter.Options{Seed: 42, Hosts: 8})
	if err != nil {
		log.Fatal(err)
	}

	// A tenant submits a 4-container training task: TP=8 inside each
	// container (NVLink), PP=2 pipeline stages, DP=2 replicas.
	task, err := d.SubmitTask(cluster.TaskSpec{Par: parallelism.Config{TP: 8, PP: 2, DP: 2}})
	if err != nil {
		log.Fatal(err)
	}
	d.Run(15 * time.Minute) // phased startup + detector history
	fmt.Printf("task %s: %d containers running, %d agents probing\n",
		task.ID, len(task.RunningContainers()), d.Agents())

	// Break the ToR-side port of container 0's rail-3 RNIC.
	addr := task.Containers[0].Addrs[3]
	nic := topology.NIC{Host: addr.Host, Rail: addr.Rail}
	link := topology.MakeLinkID(nic.ID(), d.Fabric.ToR(d.Fabric.PodOf(addr.Host), addr.Rail))
	in, err := d.Injector.Inject(faults.SwitchPortDown, faults.Target{Link: link})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v: injected %q on %v\n", d.Engine.Now().Round(time.Second), in.Info.Name, in.Components)

	d.Run(2 * time.Minute)

	for _, al := range d.Analyzer.Alarms() {
		fmt.Printf("t=%v: ALARM — %d anomalous pairs\n", al.At.Round(time.Second), len(al.Anomalies))
		for _, v := range al.Verdicts {
			fmt.Printf("   [%s] %s\n       → %v\n", v.Layer, v.Detail, v.Components)
		}
	}
	for c, at := range d.Analyzer.Blacklist() {
		fmt.Printf("blacklisted %s at t=%v (no new tasks scheduled on it)\n", c, at.Round(time.Second))
	}
}
